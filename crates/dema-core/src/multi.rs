//! Concurrent quantile queries over one identification step.
//!
//! The paper motivates Dema with roots that must "handle higher data
//! volumes and more concurrent queries". When several quantiles of the same
//! window are requested (say p25/p50/p75 for a dashboard), the synopses are
//! shared: one identification step selects the *union* of candidate slices
//! for all target ranks, one calculation step fetches them, and every rank
//! is answered from the same merged runs. Exactness per rank follows from
//! the single-rank argument — each rank's candidate set is a subset of the
//! union, and the per-rank offsets count only slices provably before that
//! rank.

use crate::error::{DemaError, Result};
use crate::event::Event;
use crate::invariant;
use crate::merge::select_kth;
use crate::numeric::{len_to_u32, len_to_u64};
use crate::quantile::Quantile;
use crate::rank::RankIndex;
use crate::selector::{select, Selection, SelectionStrategy};
use crate::slice::{SliceId, SliceSynopsis};

/// Plan for answering one rank out of the shared candidate set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankPlan {
    /// The global target rank `Pos(q)`.
    pub rank: u64,
    /// Events of *unfetched* slices certain to rank before this target.
    pub offset_below: u64,
}

impl RankPlan {
    /// 1-based position of this rank within the merged candidate events.
    #[inline]
    pub fn rank_within_candidates(&self) -> u64 {
        self.rank - self.offset_below
    }
}

/// The identification result for a set of concurrent quantile queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiSelection {
    /// Union of candidate slices across all ranks, ascending by value
    /// interval.
    pub candidates: Vec<SliceId>,
    /// Per-rank lookup plans, in the order of the requested ranks.
    pub plans: Vec<RankPlan>,
    /// Global window size `l_G`.
    pub total_events: u64,
    /// Total events the calculation step will fetch.
    pub candidate_events: u64,
}

/// Select candidates for several target ranks at once.
///
/// # Errors
/// * [`DemaError::EmptyWindow`] with no events;
/// * [`DemaError::RankOutOfRange`] if any rank is 0 or exceeds `l_G`;
/// * [`DemaError::InvalidQuantile`] if `ranks` is empty.
pub fn select_multi(
    synopses: &[SliceSynopsis],
    ranks: &[u64],
    strategy: SelectionStrategy,
) -> Result<MultiSelection> {
    if ranks.is_empty() {
        return Err(DemaError::InvalidQuantile("no ranks requested".into()));
    }
    let mut candidates: Vec<SliceId> = Vec::new();
    let mut selections: Vec<Selection> = Vec::with_capacity(ranks.len());
    for &k in ranks {
        let sel = select(synopses, k, strategy)?;
        candidates.extend(sel.candidates.iter().copied());
        selections.push(sel);
    }
    // Union, keeping the value-interval order produced by `select`.
    let mut seen = std::collections::HashSet::with_capacity(candidates.len());
    let mut by_interval: Vec<(i64, i64, SliceId)> = Vec::new();
    for s in synopses {
        if candidates.contains(&s.id) && seen.insert(s.id) {
            by_interval.push((s.first, s.last, s.id));
        }
    }
    by_interval.sort_unstable();
    let union: Vec<SliceId> = by_interval.into_iter().map(|(_, _, id)| id).collect();
    let in_union: std::collections::HashSet<SliceId> = union.iter().copied().collect();

    // Per-rank offsets against the *union*: count unpicked slices that are
    // provably before each rank.
    let index = RankIndex::build(synopses);
    let total = index.total();
    let candidate_events: u64 = synopses
        .iter()
        .filter(|s| in_union.contains(&s.id))
        .map(|s| s.count)
        .sum();
    let plans = ranks
        .iter()
        .map(|&k| {
            let offset_below = synopses
                .iter()
                .filter(|s| !in_union.contains(&s.id) && index.interval(s).entirely_before(k))
                .map(|s| s.count)
                .sum();
            RankPlan {
                rank: k,
                offset_below,
            }
        })
        .collect();
    Ok(MultiSelection {
        candidates: union,
        plans,
        total_events: total,
        candidate_events,
    })
}

/// Single-process reference: answer several quantiles of one distributed
/// window with one identification + one calculation step.
///
/// Returns the exact values in the order of `quantiles`.
///
/// # Errors
/// Propagates the errors of [`select_multi`] and rejects empty windows.
pub fn multi_quantile_decentralized(
    nodes: &[Vec<Event>],
    quantiles: &[Quantile],
    gamma: u64,
    strategy: SelectionStrategy,
) -> Result<Vec<i64>> {
    use crate::event::{NodeId, WindowId};
    use crate::slice::cut_into_slices;

    let mut synopses: Vec<SliceSynopsis> = Vec::new();
    let mut store: Vec<crate::slice::Slice> = Vec::new();
    for (i, events) in nodes.iter().enumerate() {
        let mut sorted = events.clone();
        sorted.sort_unstable();
        let l_local = len_to_u64(sorted.len());
        let slices = cut_into_slices(NodeId(len_to_u32(i)), WindowId(0), sorted, gamma)?;
        let total = len_to_u32(slices.len());
        let node_synopses = slices
            .iter()
            .map(|s| s.synopsis(total))
            .collect::<Result<Vec<_>>>()?;
        invariant::check_partition(&slices, &node_synopses, l_local)?;
        synopses.extend(node_synopses);
        store.extend(slices);
    }
    let total: u64 = synopses.iter().map(|s| s.count).sum();
    if total == 0 {
        return Err(DemaError::EmptyWindow);
    }
    invariant::check_synopsis_order(&synopses)?;
    let ranks: Vec<u64> = quantiles
        .iter()
        .map(|q| q.pos(total))
        .collect::<Result<Vec<_>>>()?;
    let multi = select_multi(&synopses, &ranks, strategy)?;
    for plan in &multi.plans {
        invariant::check_selection(&synopses, &multi.candidates, plan.rank, plan.offset_below)?;
    }
    // Shared views into the store — one refcount bump per candidate.
    let runs: Vec<crate::shared::SharedRun> = multi
        .candidates
        .iter()
        .map(|id| {
            store
                .iter()
                .find(|s| s.id == *id)
                .map(|s| s.events.clone())
                .ok_or(DemaError::MissingCandidate {
                    slice: id.to_string(),
                })
        })
        .collect::<Result<Vec<_>>>()?;
    multi
        .plans
        .iter()
        .map(|p| {
            let event = select_kth(&runs, p.rank_within_candidates())?;
            invariant::check_selected_event(&runs, p.rank_within_candidates(), &event)?;
            invariant::check_true_rank(
                nodes.iter().flatten().map(|e| e.value),
                p.rank,
                event.value,
            )?;
            Ok(event.value)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::quantile_ground_truth;

    fn events(vals: &[i64]) -> Vec<Event> {
        vals.iter()
            .enumerate()
            .map(|(i, &v)| Event::new(v, 0, i as u64))
            .collect()
    }

    const QS: [f64; 5] = [0.1, 0.25, 0.5, 0.75, 0.9];

    #[test]
    fn multi_matches_single_queries() {
        let a: Vec<Event> = (0..1000)
            .map(|i| Event::new(i * 3 % 500, 0, i as u64))
            .collect();
        let b: Vec<Event> = (0..800)
            .map(|i| Event::new(i * 7 % 900, 0, 10_000 + i as u64))
            .collect();
        let quantiles: Vec<Quantile> = QS.iter().map(|&q| Quantile::new(q).unwrap()).collect();
        let got = multi_quantile_decentralized(
            &[a.clone(), b.clone()],
            &quantiles,
            64,
            SelectionStrategy::WindowCut,
        )
        .unwrap();
        for (i, q) in quantiles.iter().enumerate() {
            let truth = quantile_ground_truth(&[a.clone(), b.clone()], *q).unwrap();
            assert_eq!(got[i], truth.value, "q={q}");
        }
    }

    #[test]
    fn union_is_smaller_than_sum_of_parts() {
        // Adjacent quantiles share candidate slices; the union must not
        // double-fetch them.
        let mut sorted: Vec<Event> = (0..10_000).map(|i| Event::new(i, 0, i as u64)).collect();
        sorted.sort_unstable();
        let slices = crate::slice::cut_into_slices(
            crate::event::NodeId(0),
            crate::event::WindowId(0),
            sorted,
            100,
        )
        .unwrap();
        let synopses: Vec<SliceSynopsis> =
            slices.iter().map(|s| s.synopsis(100).unwrap()).collect();
        // Two ranks in the same slice:
        let multi = select_multi(&synopses, &[5_010, 5_020], SelectionStrategy::WindowCut).unwrap();
        assert_eq!(multi.candidates.len(), 1);
        assert_eq!(multi.plans[0].rank_within_candidates(), 10);
        assert_eq!(multi.plans[1].rank_within_candidates(), 20);
    }

    #[test]
    fn empty_ranks_rejected() {
        let synopses: Vec<SliceSynopsis> = vec![];
        assert!(matches!(
            select_multi(&synopses, &[], SelectionStrategy::WindowCut),
            Err(DemaError::InvalidQuantile(_))
        ));
    }

    #[test]
    fn out_of_range_rank_rejected() {
        let a = events(&[1, 2, 3]);
        let err = multi_quantile_decentralized(
            &[a],
            &[Quantile::new(1.0).unwrap()],
            4,
            SelectionStrategy::WindowCut,
        );
        assert!(err.is_ok()); // 1.0 is fine
                              // but select_multi with a raw absurd rank is not:
        let mut sorted = events(&[1, 2, 3]);
        sorted.sort_unstable();
        let slices = crate::slice::cut_into_slices(
            crate::event::NodeId(0),
            crate::event::WindowId(0),
            sorted,
            4,
        )
        .unwrap();
        let synopses: Vec<SliceSynopsis> = slices.iter().map(|s| s.synopsis(1).unwrap()).collect();
        assert!(matches!(
            select_multi(&synopses, &[4], SelectionStrategy::WindowCut),
            Err(DemaError::RankOutOfRange { .. })
        ));
    }

    #[test]
    fn extreme_rank_pair_spans_whole_window() {
        let a: Vec<Event> = (0..1000).map(|i| Event::new(i, 0, i as u64)).collect();
        let quantiles = vec![Quantile::new(0.001).unwrap(), Quantile::new(1.0).unwrap()];
        let got = multi_quantile_decentralized(&[a], &quantiles, 50, SelectionStrategy::WindowCut)
            .unwrap();
        assert_eq!(got, vec![0, 999]);
    }

    #[test]
    fn duplicates_across_nodes() {
        let a = events(&[5; 50]);
        let b = events(&[5; 30]);
        let c = events(&[7; 20]);
        let quantiles = vec![Quantile::P25, Quantile::MEDIAN, Quantile::new(0.9).unwrap()];
        let got =
            multi_quantile_decentralized(&[a, b, c], &quantiles, 8, SelectionStrategy::WindowCut)
                .unwrap();
        assert_eq!(got, vec![5, 5, 7]);
    }

    #[test]
    fn all_strategies_agree() {
        let a: Vec<Event> = (0..500).map(|i| Event::new(i % 97, 0, i as u64)).collect();
        let b: Vec<Event> = (0..500)
            .map(|i| Event::new(i % 89, 0, 1000 + i as u64))
            .collect();
        let quantiles: Vec<Quantile> = QS.iter().map(|&q| Quantile::new(q).unwrap()).collect();
        let reference = multi_quantile_decentralized(
            &[a.clone(), b.clone()],
            &quantiles,
            16,
            SelectionStrategy::WindowCut,
        )
        .unwrap();
        for strategy in [SelectionStrategy::ClassifiedScan, SelectionStrategy::NoCut] {
            let got =
                multi_quantile_decentralized(&[a.clone(), b.clone()], &quantiles, 16, strategy)
                    .unwrap();
            assert_eq!(got, reference, "{strategy:?}");
        }
    }
}
