//! Quantile specification and rank arithmetic.
//!
//! For a quantile `q ∈ (0, 1]` over a global window of `l_G` events, the
//! target is the event of rank `Pos(q) = ⌈q · l_G⌉` in the fully sorted
//! global window (§3.1, "Correctness of Dema approach"). The median is the
//! special case `q = 0.5`.

use crate::error::{DemaError, Result};

/// A validated quantile fraction in `(0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Quantile(f64);

impl Quantile {
    /// The median, `q = 0.5`.
    pub const MEDIAN: Quantile = Quantile(0.5);
    /// First quartile, `q = 0.25`.
    pub const P25: Quantile = Quantile(0.25);
    /// Third quartile, `q = 0.75`.
    pub const P75: Quantile = Quantile(0.75);

    /// Validate and wrap a quantile fraction.
    ///
    /// # Errors
    /// [`DemaError::InvalidQuantile`] unless `0 < q <= 1` and `q` is finite.
    pub fn new(q: f64) -> Result<Quantile> {
        if q.is_finite() && q > 0.0 && q <= 1.0 {
            Ok(Quantile(q))
        } else {
            Err(DemaError::InvalidQuantile(format!("{q} not in (0, 1]")))
        }
    }

    /// The raw fraction.
    #[inline]
    pub fn fraction(self) -> f64 {
        self.0
    }

    /// 1-based rank of this quantile in a sorted dataset of `total` events:
    /// `Pos(q) = ⌈q · total⌉`, clamped to `[1, total]` against floating-point
    /// round-off at the edges.
    ///
    /// # Errors
    /// [`DemaError::EmptyWindow`] if `total == 0`.
    pub fn pos(self, total: u64) -> Result<u64> {
        if total == 0 {
            return Err(DemaError::EmptyWindow);
        }
        let raw = crate::numeric::f64_to_u64((self.0 * crate::numeric::u64_to_f64(total)).ceil());
        Ok(raw.clamp(1, total))
    }
}

impl std::fmt::Display for Quantile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0 * 100.0)
    }
}

impl TryFrom<f64> for Quantile {
    type Error = DemaError;
    fn try_from(q: f64) -> Result<Quantile> {
        Quantile::new(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_range() {
        assert!(Quantile::new(0.5).is_ok());
        assert!(Quantile::new(1.0).is_ok());
        assert!(Quantile::new(1e-9).is_ok());
        assert!(Quantile::new(0.0).is_err());
        assert!(Quantile::new(-0.1).is_err());
        assert!(Quantile::new(1.1).is_err());
        assert!(Quantile::new(f64::NAN).is_err());
        assert!(Quantile::new(f64::INFINITY).is_err());
    }

    #[test]
    fn median_position_matches_paper() {
        // Pos(l_G * 1/2), with ceil: for l_G = 1000 the median is rank 500.
        assert_eq!(Quantile::MEDIAN.pos(1000).unwrap(), 500);
        assert_eq!(Quantile::MEDIAN.pos(1001).unwrap(), 501);
        assert_eq!(Quantile::MEDIAN.pos(1).unwrap(), 1);
        assert_eq!(Quantile::MEDIAN.pos(2).unwrap(), 1);
    }

    #[test]
    fn quartile_positions() {
        assert_eq!(Quantile::P25.pos(1000).unwrap(), 250);
        assert_eq!(Quantile::P75.pos(1000).unwrap(), 750);
        // 25% quantile of l_G located at Pos(l_G * 1/4) per the paper.
        assert_eq!(Quantile::P25.pos(4).unwrap(), 1);
    }

    #[test]
    fn extreme_quantiles_clamp_to_valid_ranks() {
        assert_eq!(Quantile::new(1.0).unwrap().pos(10).unwrap(), 10);
        assert_eq!(Quantile::new(1e-12).unwrap().pos(10).unwrap(), 1);
    }

    #[test]
    fn empty_window_is_an_error() {
        assert_eq!(Quantile::MEDIAN.pos(0), Err(DemaError::EmptyWindow));
    }

    #[test]
    fn rank_never_exceeds_total() {
        for total in 1..200 {
            for q in [0.001, 0.25, 0.3, 0.5, 0.75, 0.999, 1.0] {
                let pos = Quantile::new(q).unwrap().pos(total).unwrap();
                assert!((1..=total).contains(&pos), "q={q} total={total} pos={pos}");
            }
        }
    }

    #[test]
    fn display_formats_as_percent() {
        assert_eq!(Quantile::MEDIAN.to_string(), "p50");
        assert_eq!(Quantile::P25.to_string(), "p25");
    }

    #[test]
    fn try_from_f64() {
        assert_eq!(Quantile::try_from(0.5).unwrap(), Quantile::MEDIAN);
        assert!(Quantile::try_from(2.0).is_err());
    }
}
