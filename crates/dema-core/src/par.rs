//! Deterministic parallel sort for the per-window hot path.
//!
//! The local node's dominant per-window cost is sorting the window buffer
//! before [`crate::slice::cut_into_slices`] carves it into γ-sized slices.
//! This module parallelizes that sort over a small process-wide worker
//! pool while keeping the output **bit-identical** to
//! `slice::sort_unstable()` — including the order of fully duplicate
//! events — so every downstream golden test, traffic counter, and the
//! bounded interleaving explorer see exactly the serial behaviour.
//!
//! ## Determinism argument
//!
//! [`Event`] derives a *total* order (`value`, then `ts`, then `id`), so a
//! sorted sequence of any multiset of events is unique: equal elements are
//! byte-identical and indistinguishable under any permutation. Chunk
//! boundaries are derived from the requested thread count and the input
//! length alone (`c·n/t`), never from pool size or thread timing, and the
//! chunks are reassembled with [`crate::merge::merge_runs`], whose
//! `(event, run-index)` tie-break is itself deterministic. Two runs with
//! `DEMA_THREADS=1` and `DEMA_THREADS=64` therefore produce the same
//! bytes; only wall-clock changes.
//!
//! ## Run sort
//!
//! The per-run primitive [`sort_run`] is span-adaptive: windows whose
//! values fit a 32-bit band (every sensor workload in the paper) take an
//! LSD radix sort over packed `(value offset, original index)` u64 keys —
//! 11-bit digits, one to three O(n) passes — followed by a gather and a
//! `(ts, id)` tie-break pass over equal-value runs. Wider spans fall back
//! to `sort_unstable`. Because [`Event`]'s order is total, both paths
//! yield the identical permutation; the radix path only changes
//! wall-clock.
//!
//! ## Pool shape
//!
//! Workers are spawned lazily on first parallel sort and share one job
//! queue (a `VecDeque` behind the ranked [`sync::Mutex`](crate::sync),
//! signalled through a [`sync::Condvar`](crate::sync)): an idle worker
//! waits on the condvar and steals the next chunk the moment it is
//! queued, so load balances across concurrent windows without any
//! per-window thread spawns. Inputs below [`PAR_SORT_MIN`] skip dispatch
//! entirely and sort inline — chunking overhead would dominate.
//!
//! [`Pool`] has an explicit lifecycle: dropping a scoped pool latches
//! shutdown, drains the queued jobs, and joins every worker, and a
//! process-wide registry ([`pool_stats`]) counts worker spawns/exits so
//! tests can prove repeated cluster runs neither leak threads nor
//! poison the queue. The shared pool used by [`sort_events`] lives in a
//! static and is reused for the process lifetime.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crate::event::Event;
use crate::sync::{rank, Condvar, Mutex};

/// Inputs shorter than this sort inline on the calling thread: below a few
/// thousand events the channel round trip and the final k-way merge cost
/// more than the sort itself (see BENCH_NOTES.md, "parallel hot path").
pub const PAR_SORT_MIN: usize = 8192;

/// Runs shorter than this use `sort_unstable` directly inside
/// [`sort_run`]: the radix key build and gather passes cost more than a
/// comparison sort of a few hundred elements.
pub const RADIX_MIN: usize = 256;

/// Radix digit width. 11 bits → 2048 buckets: one `usize` bucket table
/// fits comfortably in L1/L2 while covering a full 32-bit value span in
/// three passes (sensor-range spans in one or two).
const DIGIT_BITS: u32 = 11;

/// Bucket count per radix pass.
const BUCKETS: usize = 1 << DIGIT_BITS;

/// Upper bound on the thread count accepted from `DEMA_THREADS` or
/// callers; a larger request is clamped, not an error.
pub const MAX_THREADS: usize = 64;

/// A unit of pool work: sort one owned chunk and ship it back.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Job queue plus the shutdown latch, guarded by the `par.queue` rank.
struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

/// State shared between a pool's handle and its workers.
struct PoolShared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
    /// Workers of *this* pool currently inside their worker loop;
    /// exactly zero once [`Pool::drop`] has joined them.
    live: AtomicUsize,
}

/// Workers ever spawned, process-wide (monotonic; bumped synchronously
/// by [`Pool::new`] on the spawning thread).
static SPAWNED: AtomicUsize = AtomicUsize::new(0);

/// Workers currently running, process-wide (entry/exit accounting done
/// by the worker thread itself, panic-safe via [`LiveToken`]).
static LIVE: AtomicUsize = AtomicUsize::new(0);

/// Snapshot of the worker registry across every [`Pool`] in the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Workers spawned since process start (monotonic).
    pub spawned: usize,
    /// Workers currently running their loop.
    pub live: usize,
}

/// Read the process-wide worker registry.
///
/// Lifecycle tests compare `spawned` across repeated cluster runs: the
/// shared pool is spawned once, so the count must not grow run-over-run.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        spawned: SPAWNED.load(Ordering::SeqCst),
        live: LIVE.load(Ordering::SeqCst),
    }
}

/// Registers a worker as live on construction and, however the worker
/// exits (shutdown or a panicking job), deregisters it on drop.
struct LiveToken<'a> {
    shared: &'a PoolShared,
}

impl<'a> LiveToken<'a> {
    fn register(shared: &'a PoolShared) -> LiveToken<'a> {
        LIVE.fetch_add(1, Ordering::SeqCst);
        shared.live.fetch_add(1, Ordering::SeqCst);
        LiveToken { shared }
    }
}

impl Drop for LiveToken<'_> {
    fn drop(&mut self) {
        self.shared.live.fetch_sub(1, Ordering::SeqCst);
        LIVE.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A sort worker pool with an explicit shutdown path.
///
/// The shared pool behind [`sort_events`] lives in a static and is never
/// dropped; a scoped pool shuts down deterministically in `Drop` — the
/// shutdown latch is set under the queue lock, every worker is woken,
/// queued jobs drain, and the worker threads are joined, so no worker
/// thread ever outlives its pool.
pub struct Pool {
    /// Workers actually running (spawn failures only shrink the pool).
    workers: usize,
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Spawn a pool with up to `target` workers. Spawn failures shrink
    /// the pool instead of erroring; callers fall back to inline sorting
    /// when [`Pool::workers`] reports zero.
    pub fn new(target: usize) -> Pool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(
                rank::PAR_QUEUE,
                PoolState {
                    queue: VecDeque::new(),
                    shutdown: false,
                },
            ),
            work_ready: Condvar::new(),
            live: AtomicUsize::new(0),
        });
        let mut handles = Vec::with_capacity(target);
        for i in 0..target {
            let shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("dema-par-{i}"))
                .spawn(move || {
                    let _live = LiveToken::register(&shared);
                    worker_loop(&shared);
                });
            if let Ok(handle) = spawned {
                SPAWNED.fetch_add(1, Ordering::SeqCst);
                handles.push(handle);
            }
        }
        Pool {
            workers: handles.len(),
            shared: Arc::clone(&shared),
            handles,
        }
    }

    /// Number of workers actually running.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Queue one job and wake an idle worker.
    fn submit(&self, job: Job) {
        {
            let mut state = self.shared.state.lock();
            state.queue.push_back(job);
        }
        self.shared.work_ready.notify_one();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock();
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Thread count used when the caller does not pass one explicitly:
/// `DEMA_THREADS` when set to a positive integer (clamped to
/// [`MAX_THREADS`]), else the machine's available parallelism capped at 4.
/// Latched on first use so every sort in a process agrees.
pub fn default_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(raw) = std::env::var("DEMA_THREADS") {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n >= 1 {
                    return n.min(MAX_THREADS);
                }
            }
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(4)
    })
}

/// The shared pool, spawned on first use with `default_threads() - 1`
/// workers (the calling thread always sorts one chunk itself).
fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool::new(default_threads().saturating_sub(1)))
}

/// Worker body: steal queued jobs until shutdown. The queue guard is
/// dropped before the job runs, so jobs execute lock-free; waiting
/// happens inside [`Condvar::wait`], which releases the queue lock (and
/// its tracker rank) for the duration of the block.
fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.state.lock();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = shared.work_ready.wait(state);
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

thread_local! {
    /// Reused radix scratch — two key/index ping-pong lanes plus the event
    /// gather buffer — so steady-state window sorts allocate nothing.
    static SCRATCH: RefCell<(Vec<u64>, Vec<u64>, Vec<Event>)> =
        const { RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
}

/// Sort one run in place on the calling thread — the single-threaded
/// primitive under both the serial path and the pool's chunk jobs.
///
/// Dispatches on the observed value *span*: sensor-style streams (values
/// inside a narrow band, whatever their absolute offset) take an LSD
/// radix sort over packed `(value offset, index)` keys — O(n) per digit
/// pass instead of O(n log n) comparisons — and anything wider falls back
/// to `sort_unstable`. Both paths produce THE sorted permutation of the
/// derived total [`Event`] order, so the output is bit-identical to
/// `sort_unstable` regardless of which path ran.
pub fn sort_run(events: &mut [Event]) {
    let _phase = crate::alloc::enter_phase(crate::alloc::Phase::Sort);
    let n = events.len();
    if n < RADIX_MIN || n > u32::MAX as usize {
        events.sort_unstable();
        return;
    }
    let mut min = i64::MAX;
    let mut max = i64::MIN;
    for e in events.iter() {
        min = min.min(e.value);
        max = max.max(e.value);
    }
    // Bit-pattern subtraction gives the mathematical offset for any i64
    // pair with max >= min; spans beyond 32 bits would need more digit
    // passes than the comparison sort costs.
    let span = (max as u64).wrapping_sub(min as u64);
    if span > u64::from(u32::MAX) {
        events.sort_unstable();
        return;
    }
    let bits = 64 - span.leading_zeros();
    let passes = bits.div_ceil(DIGIT_BITS).max(1);
    SCRATCH.with(|s| {
        let (a, b, tmp) = &mut *s.borrow_mut();
        // Pack each event's value offset (high 32 bits) over its original
        // index (low 32): every digit pass then moves a single u64.
        a.clear();
        a.extend(
            events
                .iter()
                .enumerate()
                .map(|(i, e)| ((e.value as u64).wrapping_sub(min as u64) << 32) | i as u64),
        );
        b.clear();
        b.resize(n, 0);
        for p in 0..passes {
            let shift = 32 + p * DIGIT_BITS;
            // Counting sort on this digit: histogram, prefix, stable scatter.
            let mut starts = [0usize; BUCKETS + 1];
            for &x in a.iter() {
                starts[((x >> shift) as usize & (BUCKETS - 1)) + 1] += 1;
            }
            for d in 0..BUCKETS {
                starts[d + 1] += starts[d];
            }
            for &x in a.iter() {
                let d = (x >> shift) as usize & (BUCKETS - 1);
                b[starts[d]] = x;
                starts[d] += 1;
            }
            std::mem::swap(a, b);
        }
        // The scatter output indexes the *unsorted* buffer: gather through
        // a copy of it.
        tmp.clear();
        tmp.extend_from_slice(events);
        for (slot, &x) in events.iter_mut().zip(a.iter()) {
            *slot = tmp[(x & 0xFFFF_FFFF) as usize];
        }
    });
    // The digit passes order by value only; being stable, they leave equal
    // values in arrival order. Windows arrive roughly time-ordered, so most
    // tie runs are already (ts, id)-sorted — check before sorting.
    let mut i = 0;
    while i < n {
        let mut j = i + 1;
        while j < n && events[j].value == events[i].value {
            j += 1;
        }
        if j - i > 1 && !events[i..j].is_sorted() {
            events[i..j].sort_unstable();
        }
        i = j;
    }
}

/// Sort `events` ascending by the derived total [`Event`] order using the
/// process default thread count ([`default_threads`]).
///
/// Output is bit-identical to `events.sort_unstable()` for every thread
/// count — see the module docs for the argument.
pub fn sort_events(events: &mut Vec<Event>) {
    sort_events_with(events, default_threads());
}

/// Sort `events` with an explicit `threads` request.
///
/// Chunk boundaries depend only on `threads` and `events.len()`, so the
/// result — and even the intermediate run set — is reproducible across
/// machines and pool sizes. Falls back to an inline `sort_unstable` when
/// `threads <= 1`, the input is below [`PAR_SORT_MIN`], or no pool worker
/// could be spawned.
pub fn sort_events_with(events: &mut Vec<Event>, threads: usize) {
    let _phase = crate::alloc::enter_phase(crate::alloc::Phase::Sort);
    let n = events.len();
    let t = threads.clamp(1, MAX_THREADS);
    if t <= 1 || n < PAR_SORT_MIN {
        sort_run(events);
        return;
    }
    let pool = pool();
    if pool.workers == 0 {
        sort_run(events);
        return;
    }

    // Deterministic split: chunk c covers [c·n/t, (c+1)·n/t). Peeling from
    // the back with `split_off` moves ownership without copying events.
    let mut parts: Vec<Vec<Event>> = Vec::with_capacity(t);
    for c in (1..t).rev() {
        parts.push(events.split_off(c * n / t));
    }
    parts.push(std::mem::take(events));
    parts.reverse();

    // Per-call result collector: each job deposits its sorted chunk in
    // its slot and wakes the caller once every slot is filled. Bounded
    // by construction (t - 1 slots), unlike the old per-call unbounded
    // done-channel.
    struct BatchState {
        slots: Vec<Option<Vec<Event>>>,
        filled: usize,
    }
    struct SortBatch {
        slots: Mutex<BatchState>,
        done: Condvar,
    }
    let batch = Arc::new(SortBatch {
        slots: Mutex::new(
            rank::PAR_RESULTS,
            BatchState {
                slots: (1..t).map(|_| None).collect(),
                filled: 0,
            },
        ),
        done: Condvar::new(),
    });

    let mut first = Vec::new();
    for (pos, mut chunk) in parts.into_iter().enumerate() {
        if pos == 0 {
            first = chunk;
            continue;
        }
        let batch = Arc::clone(&batch);
        let job: Job = Box::new(move || {
            sort_run(&mut chunk);
            {
                let mut state = batch.slots.lock();
                state.slots[pos - 1] = Some(chunk);
                state.filled += 1;
            }
            batch.done.notify_one();
        });
        pool.submit(job);
    }

    // The calling thread is worker zero.
    sort_run(&mut first);

    let sorted_rest = {
        let mut state = batch.slots.lock();
        while state.filled < t - 1 {
            state = batch.done.wait(state);
        }
        std::mem::take(&mut state.slots)
    };

    let mut runs: Vec<Vec<Event>> = Vec::with_capacity(t);
    runs.push(first);
    // Every slot is Some once filled == t - 1; the default is unreachable.
    runs.extend(sorted_rest.into_iter().map(Option::unwrap_or_default));
    *events = crate::merge::merge_runs(&runs);
    debug_assert_eq!(events.len(), n);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random events, duplicates included.
    fn scrambled(n: usize) -> Vec<Event> {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        (0..n)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // Narrow value range forces duplicate values; duplicate
                // (value, ts) pairs still differ by id except when forced.
                Event::new((state % 97) as i64, state % 5, i as u64)
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_across_thread_counts() {
        for n in [0, 1, PAR_SORT_MIN - 1, PAR_SORT_MIN, 3 * PAR_SORT_MIN + 17] {
            let base = scrambled(n);
            let mut expect = base.clone();
            expect.sort_unstable();
            for t in [1, 2, 3, 4, 7, MAX_THREADS] {
                let mut got = base.clone();
                sort_events_with(&mut got, t);
                assert_eq!(got, expect, "n={n} t={t}");
            }
        }
    }

    #[test]
    fn fully_duplicate_events_stay_bit_identical() {
        let base: Vec<Event> = (0..2 * PAR_SORT_MIN).map(|_| Event::new(7, 3, 9)).collect();
        let mut expect = base.clone();
        expect.sort_unstable();
        let mut got = base;
        sort_events_with(&mut got, 4);
        assert_eq!(got, expect);
    }

    #[test]
    fn radix_matches_sort_unstable_across_value_spans() {
        // Spans chosen to hit 1, 2, and 3 digit passes, plus the wide-span
        // comparison fallback; offsets exercise negative and near-extreme
        // bases. Ties get deliberately scrambled (ts, id) pairs.
        for (base, span) in [
            (0i64, 1u64 << 8),
            (-1_000_000, 1 << 10),
            (i64::MIN / 2, 1 << 20),
            (7, (1 << 31) + 12345),
            (-3, u64::from(u32::MAX) + 1), // fallback path
        ] {
            let mut state = 0xDEAD_BEEF_u64;
            let events: Vec<Event> = (0..3 * RADIX_MIN)
                .map(|i| {
                    state = state
                        .wrapping_mul(2862933555777941757)
                        .wrapping_add(3037000493);
                    let v = base.wrapping_add((state % span.max(1)) as i64);
                    Event::new(v, state >> 48, (i as u64) ^ (state >> 32))
                })
                .collect();
            let mut expect = events.clone();
            expect.sort_unstable();
            let mut got = events;
            sort_run(&mut got);
            assert_eq!(got, expect, "base={base} span={span}");
        }
    }

    #[test]
    fn radix_below_min_and_single_value_runs() {
        let mut tiny = scrambled(RADIX_MIN - 1);
        let mut expect = tiny.clone();
        expect.sort_unstable();
        sort_run(&mut tiny);
        assert_eq!(tiny, expect);

        // One distinct value: single pass, all ties — the tie-break pass
        // must still order by (ts, id).
        let mut state = 1u64;
        let mut same: Vec<Event> = (0..2 * RADIX_MIN)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                Event::new(42, state % 1000, state >> 32)
            })
            .collect();
        let mut expect = same.clone();
        expect.sort_unstable();
        sort_run(&mut same);
        assert_eq!(same, expect);
    }

    #[test]
    fn default_threads_is_latched_and_positive() {
        let a = default_threads();
        let b = default_threads();
        assert_eq!(a, b);
        assert!((1..=MAX_THREADS).contains(&a));
    }

    #[test]
    fn env_default_entry_point_sorts() {
        let mut v = scrambled(PAR_SORT_MIN + 5);
        let mut expect = v.clone();
        expect.sort_unstable();
        sort_events(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn scoped_pool_drains_queue_then_joins_every_worker() {
        let pool = Pool::new(4);
        assert!(pool.workers() <= 4);
        let shared = Arc::clone(&pool.shared);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let hits = Arc::clone(&hits);
            pool.submit(Box::new(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            }));
        }
        drop(pool);
        // Drop drains queued jobs before shutdown, then joins: every job
        // ran and no worker thread outlives its pool.
        assert_eq!(hits.load(Ordering::SeqCst), 16, "queued jobs must drain");
        assert_eq!(shared.live.load(Ordering::SeqCst), 0, "worker leaked");
    }

    #[test]
    fn repeated_scoped_pools_leave_the_live_count_flat() {
        for _ in 0..3 {
            let pool = Pool::new(2);
            let shared = Arc::clone(&pool.shared);
            pool.submit(Box::new(|| {}));
            drop(pool);
            assert_eq!(shared.live.load(Ordering::SeqCst), 0);
        }
    }

    #[test]
    fn shared_pool_is_reused_across_repeated_sorts() {
        // Force the shared pool into existence, then sort again: the
        // registry's monotonic spawn count must not grow run-over-run.
        let mut v = scrambled(2 * PAR_SORT_MIN);
        sort_events_with(&mut v, 4);
        let spawned_after_first = pool_stats().spawned;
        for _ in 0..2 {
            let mut w = scrambled(2 * PAR_SORT_MIN);
            let mut expect = w.clone();
            expect.sort_unstable();
            sort_events_with(&mut w, 4);
            assert_eq!(w, expect);
        }
        assert_eq!(
            pool_stats().spawned,
            spawned_after_first,
            "shared pool must be spawned once per process"
        );
    }

    #[test]
    fn radix_scratch_is_reused_across_windows() {
        // Pin the scratch-reuse contract with the alloc counters: once one
        // window has grown this thread's radix scratch, a same-sized window
        // sorts without a single fresh allocation in the Sort phase.
        if !crate::alloc::armed() {
            return;
        }
        let base = scrambled(4 * RADIX_MIN);
        let mut warm = base.clone();
        sort_run(&mut warm); // grows SCRATCH to this window size
        let mut next = base; // moved: its buffer predates the snapshot
        let before = crate::alloc::snapshot();
        sort_run(&mut next);
        let delta = crate::alloc::snapshot().since(&before);
        assert_eq!(
            delta.fresh[crate::alloc::Phase::Sort as usize],
            0,
            "steady-state sort_run must reuse the thread-local scratch"
        );
        assert_eq!(warm, next);
    }

    #[test]
    fn below_crossover_never_touches_the_pool() {
        // Indirect but sufficient: tiny inputs sort correctly even with an
        // absurd thread request — the inline path ignores it.
        let mut v = scrambled(64);
        let mut expect = v.clone();
        expect.sort_unstable();
        sort_events_with(&mut v, MAX_THREADS);
        assert_eq!(v, expect);
    }
}
