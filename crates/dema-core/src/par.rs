//! Deterministic parallel sort for the per-window hot path.
//!
//! The local node's dominant per-window cost is sorting the window buffer
//! before [`crate::slice::cut_into_slices`] carves it into γ-sized slices.
//! This module parallelizes that sort over a small process-wide worker
//! pool while keeping the output **bit-identical** to
//! `slice::sort_unstable()` — including the order of fully duplicate
//! events — so every downstream golden test, traffic counter, and the
//! bounded interleaving explorer see exactly the serial behaviour.
//!
//! ## Determinism argument
//!
//! [`Event`] derives a *total* order (`value`, then `ts`, then `id`), so a
//! sorted sequence of any multiset of events is unique: equal elements are
//! byte-identical and indistinguishable under any permutation. Chunk
//! boundaries are derived from the requested thread count and the input
//! length alone (`c·n/t`), never from pool size or thread timing, and the
//! chunks are reassembled with [`crate::merge::merge_runs`], whose
//! `(event, run-index)` tie-break is itself deterministic. Two runs with
//! `DEMA_THREADS=1` and `DEMA_THREADS=64` therefore produce the same
//! bytes; only wall-clock changes.
//!
//! ## Run sort
//!
//! The per-run primitive [`sort_run`] is span-adaptive: windows whose
//! values fit a 32-bit band (every sensor workload in the paper) take an
//! LSD radix sort over packed `(value offset, original index)` u64 keys —
//! 11-bit digits, one to three O(n) passes — followed by a gather and a
//! `(ts, id)` tie-break pass over equal-value runs. Wider spans fall back
//! to `sort_unstable`. Because [`Event`]'s order is total, both paths
//! yield the identical permutation; the radix path only changes
//! wall-clock.
//!
//! ## Pool shape
//!
//! Workers are spawned lazily on first parallel sort and share one
//! injector channel (the vendored `crossbeam` shim) behind a mutex: an
//! idle worker camps on the receiver and steals the next chunk the moment
//! it is queued, so load balances across concurrent windows without any
//! per-window thread spawns. Inputs below [`PAR_SORT_MIN`] skip dispatch
//! entirely and sort inline — chunking overhead would dominate.

use std::cell::RefCell;
use std::sync::{Arc, Mutex, OnceLock};

use crate::event::Event;

/// Inputs shorter than this sort inline on the calling thread: below a few
/// thousand events the channel round trip and the final k-way merge cost
/// more than the sort itself (see BENCH_NOTES.md, "parallel hot path").
pub const PAR_SORT_MIN: usize = 8192;

/// Runs shorter than this use `sort_unstable` directly inside
/// [`sort_run`]: the radix key build and gather passes cost more than a
/// comparison sort of a few hundred elements.
pub const RADIX_MIN: usize = 256;

/// Radix digit width. 11 bits → 2048 buckets: one `usize` bucket table
/// fits comfortably in L1/L2 while covering a full 32-bit value span in
/// three passes (sensor-range spans in one or two).
const DIGIT_BITS: u32 = 11;

/// Bucket count per radix pass.
const BUCKETS: usize = 1 << DIGIT_BITS;

/// Upper bound on the thread count accepted from `DEMA_THREADS` or
/// callers; a larger request is clamped, not an error.
pub const MAX_THREADS: usize = 64;

/// A unit of pool work: sort one owned chunk and ship it back.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The process-wide sort pool: worker count and the injector handle.
struct Pool {
    /// Workers actually running (spawn failures only shrink the pool).
    workers: usize,
    /// Job injector; kept alive for the process lifetime so workers never
    /// observe a disconnect.
    inject: crossbeam::channel::Sender<Job>,
}

/// Thread count used when the caller does not pass one explicitly:
/// `DEMA_THREADS` when set to a positive integer (clamped to
/// [`MAX_THREADS`]), else the machine's available parallelism capped at 4.
/// Latched on first use so every sort in a process agrees.
pub fn default_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(raw) = std::env::var("DEMA_THREADS") {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n >= 1 {
                    return n.min(MAX_THREADS);
                }
            }
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(4)
    })
}

/// The shared pool, spawned on first use with `default_threads() - 1`
/// workers (the calling thread always sorts one chunk itself).
fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let target = default_threads().saturating_sub(1);
        let (inject, rx) = crossbeam::channel::unbounded::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = 0;
        for i in 0..target {
            let rx = Arc::clone(&rx);
            let spawned = std::thread::Builder::new()
                .name(format!("dema-par-{i}"))
                .spawn(move || worker_loop(&rx));
            if spawned.is_ok() {
                workers += 1;
            }
        }
        Pool { workers, inject }
    })
}

/// Worker body: steal jobs until the channel disconnects (never, in
/// practice — the injector lives in the pool static).
fn worker_loop(rx: &Mutex<crossbeam::channel::Receiver<Job>>) {
    loop {
        let job = {
            // A poisoned lock only means another worker panicked while
            // holding the guard; the receiver itself is still sound.
            let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv()
        };
        match job {
            Ok(job) => job(),
            Err(_) => return,
        }
    }
}

thread_local! {
    /// Reused radix scratch — two key/index ping-pong lanes plus the event
    /// gather buffer — so steady-state window sorts allocate nothing.
    static SCRATCH: RefCell<(Vec<u64>, Vec<u64>, Vec<Event>)> =
        const { RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
}

/// Sort one run in place on the calling thread — the single-threaded
/// primitive under both the serial path and the pool's chunk jobs.
///
/// Dispatches on the observed value *span*: sensor-style streams (values
/// inside a narrow band, whatever their absolute offset) take an LSD
/// radix sort over packed `(value offset, index)` keys — O(n) per digit
/// pass instead of O(n log n) comparisons — and anything wider falls back
/// to `sort_unstable`. Both paths produce THE sorted permutation of the
/// derived total [`Event`] order, so the output is bit-identical to
/// `sort_unstable` regardless of which path ran.
pub fn sort_run(events: &mut [Event]) {
    let n = events.len();
    if n < RADIX_MIN || n > u32::MAX as usize {
        events.sort_unstable();
        return;
    }
    let mut min = i64::MAX;
    let mut max = i64::MIN;
    for e in events.iter() {
        min = min.min(e.value);
        max = max.max(e.value);
    }
    // Bit-pattern subtraction gives the mathematical offset for any i64
    // pair with max >= min; spans beyond 32 bits would need more digit
    // passes than the comparison sort costs.
    let span = (max as u64).wrapping_sub(min as u64);
    if span > u64::from(u32::MAX) {
        events.sort_unstable();
        return;
    }
    let bits = 64 - span.leading_zeros();
    let passes = bits.div_ceil(DIGIT_BITS).max(1);
    SCRATCH.with(|s| {
        let (a, b, tmp) = &mut *s.borrow_mut();
        // Pack each event's value offset (high 32 bits) over its original
        // index (low 32): every digit pass then moves a single u64.
        a.clear();
        a.extend(
            events
                .iter()
                .enumerate()
                .map(|(i, e)| ((e.value as u64).wrapping_sub(min as u64) << 32) | i as u64),
        );
        b.clear();
        b.resize(n, 0);
        for p in 0..passes {
            let shift = 32 + p * DIGIT_BITS;
            // Counting sort on this digit: histogram, prefix, stable scatter.
            let mut starts = [0usize; BUCKETS + 1];
            for &x in a.iter() {
                starts[((x >> shift) as usize & (BUCKETS - 1)) + 1] += 1;
            }
            for d in 0..BUCKETS {
                starts[d + 1] += starts[d];
            }
            for &x in a.iter() {
                let d = (x >> shift) as usize & (BUCKETS - 1);
                b[starts[d]] = x;
                starts[d] += 1;
            }
            std::mem::swap(a, b);
        }
        // The scatter output indexes the *unsorted* buffer: gather through
        // a copy of it.
        tmp.clear();
        tmp.extend_from_slice(events);
        for (slot, &x) in events.iter_mut().zip(a.iter()) {
            *slot = tmp[(x & 0xFFFF_FFFF) as usize];
        }
    });
    // The digit passes order by value only; being stable, they leave equal
    // values in arrival order. Windows arrive roughly time-ordered, so most
    // tie runs are already (ts, id)-sorted — check before sorting.
    let mut i = 0;
    while i < n {
        let mut j = i + 1;
        while j < n && events[j].value == events[i].value {
            j += 1;
        }
        if j - i > 1 && !events[i..j].is_sorted() {
            events[i..j].sort_unstable();
        }
        i = j;
    }
}

/// Sort `events` ascending by the derived total [`Event`] order using the
/// process default thread count ([`default_threads`]).
///
/// Output is bit-identical to `events.sort_unstable()` for every thread
/// count — see the module docs for the argument.
pub fn sort_events(events: &mut Vec<Event>) {
    sort_events_with(events, default_threads());
}

/// Sort `events` with an explicit `threads` request.
///
/// Chunk boundaries depend only on `threads` and `events.len()`, so the
/// result — and even the intermediate run set — is reproducible across
/// machines and pool sizes. Falls back to an inline `sort_unstable` when
/// `threads <= 1`, the input is below [`PAR_SORT_MIN`], or no pool worker
/// could be spawned.
pub fn sort_events_with(events: &mut Vec<Event>, threads: usize) {
    let n = events.len();
    let t = threads.clamp(1, MAX_THREADS);
    if t <= 1 || n < PAR_SORT_MIN {
        sort_run(events);
        return;
    }
    let pool = pool();
    if pool.workers == 0 {
        sort_run(events);
        return;
    }

    // Deterministic split: chunk c covers [c·n/t, (c+1)·n/t). Peeling from
    // the back with `split_off` moves ownership without copying events.
    let mut parts: Vec<Vec<Event>> = Vec::with_capacity(t);
    for c in (1..t).rev() {
        parts.push(events.split_off(c * n / t));
    }
    parts.push(std::mem::take(events));
    parts.reverse();

    let (done_tx, done_rx) = crossbeam::channel::unbounded::<(usize, Vec<Event>)>();
    let mut first = Vec::new();
    let mut rest: Vec<Vec<Event>> = Vec::new();
    rest.resize_with(t - 1, Vec::new);
    for (pos, mut chunk) in parts.into_iter().enumerate() {
        if pos == 0 {
            first = chunk;
            continue;
        }
        let tx = done_tx.clone();
        let job: Job = Box::new(move || {
            sort_run(&mut chunk);
            // The result receiver outlives every job of this call; a
            // failed send would mean the caller vanished mid-sort.
            let _ = tx.send((pos - 1, chunk));
        });
        if let Err(stranded) = pool.inject.send(job) {
            // Injector disconnected (impossible while the static lives):
            // the job comes back in the error — run it inline.
            (stranded.0)();
        }
    }
    // Drop our sender so a vanished worker surfaces as a disconnect below
    // instead of a hang; buffered results still drain after that.
    drop(done_tx);

    // The calling thread is worker zero.
    sort_run(&mut first);

    let mut received = 0;
    while received < t - 1 {
        match done_rx.recv() {
            Ok((slot, chunk)) => {
                rest[slot] = chunk;
                received += 1;
            }
            Err(_) => {
                // Unreachable: chunk sorting cannot panic, and jobs that
                // fail to enqueue ran inline above.
                debug_assert_eq!(received, t - 1, "sort worker vanished");
                break;
            }
        }
    }

    let mut runs: Vec<Vec<Event>> = Vec::with_capacity(t);
    runs.push(first);
    runs.append(&mut rest);
    *events = crate::merge::merge_runs(&runs);
    debug_assert_eq!(events.len(), n);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random events, duplicates included.
    fn scrambled(n: usize) -> Vec<Event> {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        (0..n)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // Narrow value range forces duplicate values; duplicate
                // (value, ts) pairs still differ by id except when forced.
                Event::new((state % 97) as i64, state % 5, i as u64)
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_across_thread_counts() {
        for n in [0, 1, PAR_SORT_MIN - 1, PAR_SORT_MIN, 3 * PAR_SORT_MIN + 17] {
            let base = scrambled(n);
            let mut expect = base.clone();
            expect.sort_unstable();
            for t in [1, 2, 3, 4, 7, MAX_THREADS] {
                let mut got = base.clone();
                sort_events_with(&mut got, t);
                assert_eq!(got, expect, "n={n} t={t}");
            }
        }
    }

    #[test]
    fn fully_duplicate_events_stay_bit_identical() {
        let base: Vec<Event> = (0..2 * PAR_SORT_MIN).map(|_| Event::new(7, 3, 9)).collect();
        let mut expect = base.clone();
        expect.sort_unstable();
        let mut got = base;
        sort_events_with(&mut got, 4);
        assert_eq!(got, expect);
    }

    #[test]
    fn radix_matches_sort_unstable_across_value_spans() {
        // Spans chosen to hit 1, 2, and 3 digit passes, plus the wide-span
        // comparison fallback; offsets exercise negative and near-extreme
        // bases. Ties get deliberately scrambled (ts, id) pairs.
        for (base, span) in [
            (0i64, 1u64 << 8),
            (-1_000_000, 1 << 10),
            (i64::MIN / 2, 1 << 20),
            (7, (1 << 31) + 12345),
            (-3, u64::from(u32::MAX) + 1), // fallback path
        ] {
            let mut state = 0xDEAD_BEEF_u64;
            let events: Vec<Event> = (0..3 * RADIX_MIN)
                .map(|i| {
                    state = state
                        .wrapping_mul(2862933555777941757)
                        .wrapping_add(3037000493);
                    let v = base.wrapping_add((state % span.max(1)) as i64);
                    Event::new(v, state >> 48, (i as u64) ^ (state >> 32))
                })
                .collect();
            let mut expect = events.clone();
            expect.sort_unstable();
            let mut got = events;
            sort_run(&mut got);
            assert_eq!(got, expect, "base={base} span={span}");
        }
    }

    #[test]
    fn radix_below_min_and_single_value_runs() {
        let mut tiny = scrambled(RADIX_MIN - 1);
        let mut expect = tiny.clone();
        expect.sort_unstable();
        sort_run(&mut tiny);
        assert_eq!(tiny, expect);

        // One distinct value: single pass, all ties — the tie-break pass
        // must still order by (ts, id).
        let mut state = 1u64;
        let mut same: Vec<Event> = (0..2 * RADIX_MIN)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                Event::new(42, state % 1000, state >> 32)
            })
            .collect();
        let mut expect = same.clone();
        expect.sort_unstable();
        sort_run(&mut same);
        assert_eq!(same, expect);
    }

    #[test]
    fn default_threads_is_latched_and_positive() {
        let a = default_threads();
        let b = default_threads();
        assert_eq!(a, b);
        assert!((1..=MAX_THREADS).contains(&a));
    }

    #[test]
    fn env_default_entry_point_sorts() {
        let mut v = scrambled(PAR_SORT_MIN + 5);
        let mut expect = v.clone();
        expect.sort_unstable();
        sort_events(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn below_crossover_never_touches_the_pool() {
        // Indirect but sufficient: tiny inputs sort correctly even with an
        // absurd thread request — the inline path ignores it.
        let mut v = scrambled(64);
        let mut expect = v.clone();
        expect.sort_unstable();
        sort_events_with(&mut v, MAX_THREADS);
        assert_eq!(v, expect);
    }
}
