//! Slice classification: separate-, compound-, and cover-slices (§3.2,
//! Figure 4), plus the overlap components ("compound groups") the window-cut
//! algorithm scans.
//!
//! * A **separate-slice** overlaps no other slice; its rank positions are
//!   exact.
//! * A **compound-slice** arises when slices overlap transitively into a
//!   chain; the root treats the chain as one unit whose size is the sum of
//!   its members — if the compound qualifies as a candidate, all members do.
//! * A **cover-slice** lies entirely within another slice's value range; if
//!   its enclosing slice is a candidate the cover-slice may hold candidate
//!   events too and must be included.
//!
//! Overlap components are totally ordered and disjoint in value, so their
//! rank spans are *exact* consecutive intervals — this is what lets the
//! selector compute exact offsets without seeing raw events.

use crate::slice::SliceSynopsis;

/// How a slice relates to the other slices of its global window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceKind {
    /// Overlaps no other slice.
    Separate,
    /// Member of an overlap chain of two or more slices.
    Compound,
    /// Entirely enclosed in another slice (index into the synopsis array of
    /// one enclosing slice — the widest one).
    Cover {
        /// Index (into the classified synopsis array) of an enclosing slice.
        coverer: usize,
    },
}

/// One maximal chain of transitively overlapping slices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlapGroup {
    /// Indices into the input synopsis array, in ascending `(first, last)`.
    pub members: Vec<usize>,
    /// Smallest `first` across members.
    pub first: i64,
    /// Largest `last` across members.
    pub last: i64,
    /// Total event count of the group.
    pub count: u64,
    /// Exact 1-based global rank of the group's first event.
    pub start_rank: u64,
    /// Exact 1-based global rank of the group's last event.
    pub end_rank: u64,
}

impl OverlapGroup {
    /// `true` if global rank `k` falls inside this group.
    #[inline]
    pub fn contains_rank(&self, k: u64) -> bool {
        self.start_rank <= k && k <= self.end_rank
    }
}

/// Full classification of a window's synopses.
#[derive(Debug, Clone)]
pub struct Classification {
    /// Overlap groups in ascending value order.
    pub groups: Vec<OverlapGroup>,
    /// For each input synopsis, the index of its group in `groups`.
    pub group_of: Vec<usize>,
    /// For each input synopsis, its kind.
    pub kinds: Vec<SliceKind>,
}

impl Classification {
    /// Index of the group whose exact rank span contains `k`, if any.
    pub fn group_containing_rank(&self, k: u64) -> Option<usize> {
        // Groups are ordered with consecutive rank spans; binary search.
        let idx = self.groups.partition_point(|g| g.end_rank < k);
        (idx < self.groups.len() && self.groups[idx].contains_rank(k)).then_some(idx)
    }
}

/// Classify all synopses of one global window.
///
/// Complexity `O(S log S)`.
pub fn classify(synopses: &[SliceSynopsis]) -> Classification {
    let mut order: Vec<usize> = (0..synopses.len()).collect();
    order.sort_unstable_by_key(|&i| (synopses[i].first, synopses[i].last));

    let mut groups: Vec<OverlapGroup> = Vec::new();
    let mut group_of = vec![usize::MAX; synopses.len()];

    // Sweep in ascending `first`, merging while the next interval starts at
    // or below the running maximum `last` (ties merge: an equal value could
    // belong to either slice).
    for &i in &order {
        let s = &synopses[i];
        match groups.last_mut() {
            Some(g) if s.first <= g.last => {
                g.members.push(i);
                g.last = g.last.max(s.last);
                g.count += s.count;
            }
            _ => groups.push(OverlapGroup {
                members: vec![i],
                first: s.first,
                last: s.last,
                count: s.count,
                start_rank: 0,
                end_rank: 0,
            }),
        }
        group_of[i] = groups.len() - 1;
    }

    // Exact consecutive rank spans via prefix sums.
    let mut acc = 0u64;
    for g in &mut groups {
        g.start_rank = acc + 1;
        acc += g.count;
        g.end_rank = acc;
    }

    // Kinds: cover detection within each group. Sorted by (first asc,
    // last desc), a slice is covered iff some earlier slice in that order
    // has last >= its last (and is not identical in id).
    let mut kinds = vec![SliceKind::Separate; synopses.len()];
    for g in &groups {
        if g.members.len() == 1 {
            kinds[g.members[0]] = SliceKind::Separate;
            continue;
        }
        let mut members = g.members.clone();
        members.sort_unstable_by_key(|&i| (synopses[i].first, std::cmp::Reverse(synopses[i].last)));
        // Track the member with the largest `last` seen so far; that is the
        // widest potential coverer for subsequent members.
        let mut widest = members[0];
        for &i in &members {
            let s = &synopses[i];
            let w = &synopses[widest];
            if i != widest && w.first <= s.first && s.last <= w.last {
                kinds[i] = SliceKind::Cover { coverer: widest };
            } else {
                kinds[i] = SliceKind::Compound;
                if s.last > w.last {
                    widest = i;
                }
            }
        }
    }

    Classification {
        groups,
        group_of,
        kinds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{NodeId, WindowId};
    use crate::slice::SliceId;

    fn syn(node: u32, index: u32, first: i64, last: i64, count: u64) -> SliceSynopsis {
        SliceSynopsis {
            id: SliceId {
                node: NodeId(node),
                window: WindowId(0),
                index,
            },
            first,
            last,
            count,
            total_slices: 0,
        }
    }

    #[test]
    fn disjoint_slices_are_separate_singletons() {
        let s = vec![
            syn(0, 0, 0, 9, 10),
            syn(1, 0, 20, 29, 10),
            syn(0, 1, 40, 49, 10),
        ];
        let c = classify(&s);
        assert_eq!(c.groups.len(), 3);
        assert!(c.kinds.iter().all(|k| *k == SliceKind::Separate));
        assert_eq!(c.groups[0].start_rank, 1);
        assert_eq!(c.groups[0].end_rank, 10);
        assert_eq!(c.groups[1].start_rank, 11);
        assert_eq!(c.groups[2].end_rank, 30);
    }

    #[test]
    fn figure_4_classification() {
        // Reconstruction of the paper's Figure 4:
        //   a1 separate | a2+b1 compound | b2,b3 covered by a3 | a3+b4 compound | b5 separate
        let a1 = syn(0, 1, 0, 9, 4);
        let a2 = syn(0, 2, 10, 25, 4);
        let b1 = syn(1, 1, 20, 35, 4);
        let a3 = syn(0, 3, 40, 70, 4);
        let b2 = syn(1, 2, 45, 50, 4);
        let b3 = syn(1, 3, 55, 60, 4);
        let b4 = syn(1, 4, 65, 80, 4);
        let b5 = syn(1, 5, 90, 99, 4);
        let s = vec![a1, a2, b1, a3, b2, b3, b4, b5];
        let c = classify(&s);

        assert_eq!(c.kinds[0], SliceKind::Separate); // a1
        assert_eq!(c.kinds[1], SliceKind::Compound); // a2
        assert_eq!(c.kinds[2], SliceKind::Compound); // b1
        assert_eq!(c.kinds[3], SliceKind::Compound); // a3
        assert_eq!(c.kinds[4], SliceKind::Cover { coverer: 3 }); // b2 within a3
        assert_eq!(c.kinds[5], SliceKind::Cover { coverer: 3 }); // b3 within a3
        assert_eq!(c.kinds[6], SliceKind::Compound); // b4 overlaps a3's tail
        assert_eq!(c.kinds[7], SliceKind::Separate); // b5

        assert_eq!(c.groups.len(), 4);
        assert_eq!(c.groups[1].members.len(), 2); // {a2, b1}
        assert_eq!(c.groups[2].members.len(), 4); // {a3, b2, b3, b4}
    }

    #[test]
    fn touching_intervals_merge() {
        let s = vec![syn(0, 0, 0, 10, 5), syn(1, 0, 10, 20, 5)];
        let c = classify(&s);
        assert_eq!(c.groups.len(), 1);
        assert_eq!(c.kinds[0], SliceKind::Compound);
        assert_eq!(c.kinds[1], SliceKind::Compound);
    }

    #[test]
    fn identical_intervals_one_covers_the_other() {
        let s = vec![syn(0, 0, 5, 15, 4), syn(1, 0, 5, 15, 4)];
        let c = classify(&s);
        assert_eq!(c.groups.len(), 1);
        // Exactly one is marked Cover (the tie is broken deterministically).
        let covers = c
            .kinds
            .iter()
            .filter(|k| matches!(k, SliceKind::Cover { .. }))
            .count();
        assert_eq!(covers, 1);
    }

    #[test]
    fn group_rank_spans_partition_total() {
        let s = vec![
            syn(0, 0, 0, 5, 3),
            syn(1, 0, 3, 8, 4),
            syn(0, 1, 20, 30, 5),
            syn(1, 1, 40, 45, 2),
        ];
        let c = classify(&s);
        let total: u64 = s.iter().map(|x| x.count).sum();
        assert_eq!(c.groups.last().unwrap().end_rank, total);
        for w in c.groups.windows(2) {
            assert_eq!(w[1].start_rank, w[0].end_rank + 1);
        }
    }

    #[test]
    fn group_containing_rank_lookup() {
        let s = vec![syn(0, 0, 0, 5, 10), syn(0, 1, 10, 15, 10)];
        let c = classify(&s);
        assert_eq!(c.group_containing_rank(1), Some(0));
        assert_eq!(c.group_containing_rank(10), Some(0));
        assert_eq!(c.group_containing_rank(11), Some(1));
        assert_eq!(c.group_containing_rank(20), Some(1));
        assert_eq!(c.group_containing_rank(21), None);
        assert_eq!(c.group_containing_rank(0), None);
    }

    #[test]
    fn chain_of_overlaps_forms_single_compound() {
        // a overlaps b, b overlaps c, a does not overlap c — still one group.
        let s = vec![
            syn(0, 0, 0, 10, 2),
            syn(1, 0, 8, 20, 2),
            syn(2, 0, 18, 30, 2),
        ];
        let c = classify(&s);
        assert_eq!(c.groups.len(), 1);
        assert!(c.kinds.iter().all(|k| *k == SliceKind::Compound));
    }

    #[test]
    fn empty_input_classifies_to_nothing() {
        let c = classify(&[]);
        assert!(c.groups.is_empty());
        assert!(c.kinds.is_empty());
        assert_eq!(c.group_containing_rank(1), None);
    }

    #[test]
    fn cover_inside_cover() {
        // c inside b inside a: both b and c are cover-slices (coverer = a).
        let s = vec![
            syn(0, 0, 0, 100, 4),
            syn(1, 0, 10, 50, 4),
            syn(2, 0, 20, 30, 4),
        ];
        let c = classify(&s);
        assert_eq!(c.kinds[0], SliceKind::Compound);
        assert_eq!(c.kinds[1], SliceKind::Cover { coverer: 0 });
        assert_eq!(c.kinds[2], SliceKind::Cover { coverer: 0 });
    }
}
