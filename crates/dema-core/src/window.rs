//! Local windows: per-node, event-time tumbling windows with in-window
//! sorting (§3.1).
//!
//! Each local node independently opens and closes windows of the same
//! lifespan as the global window; window membership is derived from event
//! time, so no coordination is needed. Events are sorted *on the local node*
//! — this is the work Dema offloads from the root. Two sort strategies are
//! provided (and benchmarked as an ablation):
//!
//! * [`SortStrategy::Incremental`] — events are placed in sorted position on
//!   arrival (binary search + insert), as the paper prescribes ("Dema
//!   incrementally sorts arriving events into windows"). Cheap per event for
//!   mostly-sorted arrival orders, `O(n)` worst-case per insert.
//! * [`SortStrategy::OnClose`] — events are appended and sorted once when
//!   the window closes. `O(n log n)` total, usually faster for random
//!   arrival orders; the paper's protocol is unaffected by the choice.

use crate::error::{DemaError, Result};
use crate::event::{Event, NodeId, WindowId};
use crate::runbuf::RunBuffer;
use crate::slice::{cut_into_slices, Slice};

/// When the local window sorts its events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortStrategy {
    /// Keep the buffer sorted on every insert (paper's description).
    #[default]
    Incremental,
    /// Append on insert, sort once at close.
    OnClose,
    /// Accumulate monotone runs on insert, k-way merge at close — `O(1)`
    /// per event on smooth sensor streams ([`crate::runbuf::RunBuffer`]).
    Runs,
}

/// Event storage of a [`LocalWindow`], shaped by its sort strategy.
#[derive(Debug, Clone)]
enum Storage {
    /// `Incremental` / `OnClose`: a flat buffer.
    Flat(Vec<Event>),
    /// `Runs`: monotone runs merged at close.
    Runs(RunBuffer),
}

/// One local node's window over `[start, end)` event time.
#[derive(Debug, Clone)]
pub struct LocalWindow {
    node: NodeId,
    window: WindowId,
    start: u64,
    end: u64,
    strategy: SortStrategy,
    storage: Storage,
}

impl LocalWindow {
    /// Open a window for `window` (length `window_len` ms) on `node`.
    pub fn new(
        node: NodeId,
        window: WindowId,
        window_len: u64,
        strategy: SortStrategy,
    ) -> LocalWindow {
        let storage = match strategy {
            SortStrategy::Runs => Storage::Runs(RunBuffer::new()),
            _ => Storage::Flat(Vec::new()),
        };
        LocalWindow {
            node,
            window,
            start: window.start(window_len),
            end: window.end(window_len),
            strategy,
            storage,
        }
    }

    /// The window's id.
    #[inline]
    pub fn id(&self) -> WindowId {
        self.window
    }

    /// Number of buffered events (the local window size `l_i`).
    #[inline]
    pub fn len(&self) -> usize {
        match &self.storage {
            Storage::Flat(v) => v.len(),
            Storage::Runs(r) => r.len(),
        }
    }

    /// `true` if no events have arrived yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inclusive event-time start of the window.
    #[inline]
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Exclusive event-time end of the window.
    #[inline]
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Ingest one event.
    ///
    /// # Errors
    /// [`DemaError::EventOutOfWindow`] if the event's timestamp lies outside
    /// `[start, end)` — the caller routed it to the wrong window.
    pub fn insert(&mut self, event: Event) -> Result<()> {
        if event.ts < self.start || event.ts >= self.end {
            return Err(DemaError::EventOutOfWindow {
                ts: event.ts,
                start: self.start,
                end: self.end,
            });
        }
        match (&mut self.storage, self.strategy) {
            (Storage::Flat(events), SortStrategy::Incremental) => {
                // Fast path: most streams are value-smooth, so the new event
                // frequently belongs at the end.
                if events.last().is_some_and(|last| *last > event) {
                    let pos = events.partition_point(|e| *e <= event);
                    events.insert(pos, event);
                } else {
                    events.push(event);
                }
            }
            (Storage::Flat(events), _) => events.push(event),
            (Storage::Runs(buf), _) => buf.push(event),
        }
        Ok(())
    }

    /// Close the window: return its events fully sorted, consuming the
    /// window.
    pub fn into_sorted_events(self) -> Vec<Event> {
        let events = match self.storage {
            Storage::Flat(mut v) => {
                if self.strategy == SortStrategy::OnClose {
                    // Pool-backed but bit-identical to `sort_unstable`
                    // (see `par`); large windows close in parallel.
                    crate::par::sort_events(&mut v);
                }
                v
            }
            Storage::Runs(buf) => buf.into_sorted(),
        };
        debug_assert!(crate::event::is_sorted(&events));
        events
    }

    /// Close the window and cut it into slices of `gamma` events — the
    /// local node's entire per-window duty in Dema's identification step.
    ///
    /// # Errors
    /// [`DemaError::InvalidGamma`] if `gamma < 2`.
    pub fn close_into_slices(self, gamma: u64) -> Result<Vec<Slice>> {
        let node = self.node;
        let window = self.window;
        cut_into_slices(node, window, self.into_sorted_events(), gamma)
    }
}

/// A node's set of concurrently open local windows, keyed by window id.
///
/// Tumbling windows close in event-time order once a watermark passes their
/// end; late events (behind the watermark) are counted and dropped, matching
/// the at-window-close semantics of the paper's evaluation.
#[derive(Debug)]
pub struct WindowManager {
    node: NodeId,
    window_len: u64,
    strategy: SortStrategy,
    open: std::collections::BTreeMap<WindowId, LocalWindow>,
    watermark: u64,
    late_events: u64,
}

impl WindowManager {
    /// Create a manager for tumbling windows of `window_len` ms.
    ///
    /// # Panics
    /// Panics if `window_len == 0`.
    pub fn new(node: NodeId, window_len: u64, strategy: SortStrategy) -> WindowManager {
        assert!(window_len > 0, "window length must be positive");
        WindowManager {
            node,
            window_len,
            strategy,
            open: std::collections::BTreeMap::new(),
            watermark: 0,
            late_events: 0,
        }
    }

    /// Number of currently open windows.
    pub fn open_windows(&self) -> usize {
        self.open.len()
    }

    /// Events dropped for arriving behind the watermark.
    pub fn late_events(&self) -> u64 {
        self.late_events
    }

    /// Current watermark (no event at or before this time is accepted).
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Route one event to its window, opening the window on demand.
    /// Returns `true` if accepted, `false` if dropped as late.
    pub fn ingest(&mut self, event: Event) -> bool {
        if event.ts < self.watermark {
            self.late_events += 1;
            return false;
        }
        let wid = WindowId::for_timestamp(event.ts, self.window_len);
        let w = self
            .open
            .entry(wid)
            .or_insert_with(|| LocalWindow::new(self.node, wid, self.window_len, self.strategy));
        // The window id is derived from the event's timestamp, so insertion
        // cannot miss; treat a disagreement defensively as a late drop
        // rather than panicking the node.
        match w.insert(event) {
            Ok(()) => true,
            Err(_) => {
                self.late_events += 1;
                false
            }
        }
    }

    /// Advance the watermark and close every window whose end has passed.
    /// Returns the closed windows in ascending window order.
    pub fn advance_watermark(&mut self, watermark: u64) -> Vec<LocalWindow> {
        self.watermark = self.watermark.max(watermark);
        let mut closed = Vec::new();
        while let Some(entry) = self.open.first_entry() {
            if entry.get().end() <= self.watermark {
                closed.push(entry.remove());
            } else {
                break;
            }
        }
        closed
    }

    /// Close all remaining windows (end of stream).
    pub fn drain(&mut self) -> Vec<LocalWindow> {
        self.watermark = u64::MAX;
        std::mem::take(&mut self.open).into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(v: i64, ts: u64) -> Event {
        Event::new(v, ts, v as u64)
    }

    #[test]
    fn insert_rejects_out_of_range() {
        let mut w = LocalWindow::new(NodeId(0), WindowId(1), 1000, SortStrategy::Incremental);
        assert_eq!(w.start(), 1000);
        assert_eq!(w.end(), 2000);
        assert!(w.insert(ev(1, 1000)).is_ok());
        assert!(w.insert(ev(2, 1999)).is_ok());
        assert!(matches!(
            w.insert(ev(3, 999)),
            Err(DemaError::EventOutOfWindow { .. })
        ));
        assert!(matches!(
            w.insert(ev(4, 2000)),
            Err(DemaError::EventOutOfWindow { .. })
        ));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn all_strategies_produce_identical_sorted_output() {
        let values = [5i64, 3, 9, 1, 7, 3, 8, 2, 2, 6];
        let mut inc = LocalWindow::new(NodeId(0), WindowId(0), 1000, SortStrategy::Incremental);
        let mut cls = LocalWindow::new(NodeId(0), WindowId(0), 1000, SortStrategy::OnClose);
        let mut run = LocalWindow::new(NodeId(0), WindowId(0), 1000, SortStrategy::Runs);
        for (i, &v) in values.iter().enumerate() {
            let e = Event::new(v, i as u64, i as u64);
            inc.insert(e).unwrap();
            cls.insert(e).unwrap();
            run.insert(e).unwrap();
        }
        let expect = cls.into_sorted_events();
        assert_eq!(inc.into_sorted_events(), expect);
        assert_eq!(run.into_sorted_events(), expect);
    }

    #[test]
    fn runs_strategy_tracks_len() {
        let mut w = LocalWindow::new(NodeId(0), WindowId(0), 1000, SortStrategy::Runs);
        assert!(w.is_empty());
        for i in 0..50 {
            w.insert(Event::new(50 - i, i as u64, i as u64)).unwrap();
        }
        assert_eq!(w.len(), 50);
        assert!(crate::event::is_sorted(&w.into_sorted_events()));
    }

    #[test]
    fn incremental_keeps_buffer_sorted_throughout() {
        let mut w = LocalWindow::new(NodeId(0), WindowId(0), 100, SortStrategy::Incremental);
        for (i, v) in [9i64, 1, 5, 5, 0, 7].into_iter().enumerate() {
            w.insert(Event::new(v, i as u64, i as u64)).unwrap();
        }
        let sorted = w.into_sorted_events();
        assert!(crate::event::is_sorted(&sorted));
        assert_eq!(sorted.first().unwrap().value, 0);
        assert_eq!(sorted.last().unwrap().value, 9);
    }

    #[test]
    fn close_into_slices_end_to_end() {
        let mut w = LocalWindow::new(NodeId(3), WindowId(0), 1000, SortStrategy::OnClose);
        for i in 0..100 {
            w.insert(Event::new(99 - i, i as u64, i as u64)).unwrap();
        }
        let slices = w.close_into_slices(30).unwrap();
        assert_eq!(slices.len(), 4);
        assert_eq!(slices[0].events[0].value, 0);
        assert_eq!(slices[3].events.last().unwrap().value, 99);
        assert!(slices.iter().all(|s| s.id.node == NodeId(3)));
    }

    #[test]
    fn empty_window_reports_empty() {
        let w = LocalWindow::new(NodeId(0), WindowId(0), 10, SortStrategy::default());
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert!(w.into_sorted_events().is_empty());
    }

    #[test]
    fn manager_routes_events_to_windows() {
        let mut m = WindowManager::new(NodeId(0), 1000, SortStrategy::OnClose);
        assert!(m.ingest(ev(1, 100)));
        assert!(m.ingest(ev(2, 1100)));
        assert!(m.ingest(ev(3, 2100)));
        assert_eq!(m.open_windows(), 3);
    }

    #[test]
    fn manager_closes_windows_behind_watermark() {
        let mut m = WindowManager::new(NodeId(0), 1000, SortStrategy::OnClose);
        m.ingest(ev(1, 100));
        m.ingest(ev(2, 1100));
        m.ingest(ev(3, 2100));
        let closed = m.advance_watermark(2000);
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0].id(), WindowId(0));
        assert_eq!(closed[1].id(), WindowId(1));
        assert_eq!(m.open_windows(), 1);
    }

    #[test]
    fn manager_drops_late_events() {
        let mut m = WindowManager::new(NodeId(0), 1000, SortStrategy::OnClose);
        m.advance_watermark(1500);
        assert!(!m.ingest(ev(1, 100)));
        assert!(!m.ingest(ev(2, 1499)));
        assert!(m.ingest(ev(3, 1500)));
        assert_eq!(m.late_events(), 2);
    }

    #[test]
    fn manager_watermark_is_monotone() {
        let mut m = WindowManager::new(NodeId(0), 1000, SortStrategy::OnClose);
        m.advance_watermark(5000);
        m.advance_watermark(1000); // going backwards is ignored
        assert_eq!(m.watermark(), 5000);
    }

    #[test]
    fn manager_drain_closes_everything() {
        let mut m = WindowManager::new(NodeId(0), 1000, SortStrategy::OnClose);
        m.ingest(ev(1, 100));
        m.ingest(ev(2, 9100));
        let closed = m.drain();
        assert_eq!(closed.len(), 2);
        assert_eq!(m.open_windows(), 0);
        assert!(!m.ingest(ev(3, 10_000))); // stream over
    }

    #[test]
    #[should_panic(expected = "window length must be positive")]
    fn zero_window_len_panics() {
        let _ = WindowManager::new(NodeId(0), 0, SortStrategy::default());
    }
}
