//! The adaptive slice factor γ (§3.3).
//!
//! The network cost of one global window, measured in events on the wire, is
//!
//! ```text
//! Cost(γ) = 2·l_G/γ          (identification: one synopsis ≙ two events
//!                             per slice, l_G/γ slices in total)
//!         + m·(γ − 2)        (calculation: m candidate slices of ~γ events,
//!                             two of which already travelled as endpoints)
//! ```
//!
//! Small γ degenerates to shipping everything twice; large γ inflates the
//! candidate slices. Minimizing over continuous γ gives the closed form
//! `γ* = √(2·l_G / m)`; [`optimal_gamma`] refines it over the integer
//! neighbourhood. [`AdaptiveGamma`] smooths the per-window observations of
//! `l_G` and `m` so the controller stays stable when event rates and
//! distributions drift between windows.
//!
//! All float↔integer movement goes through [`crate::numeric`]: widening is
//! explicit about its 2^53 precision cliff and narrowing saturates instead
//! of wrapping, so a pathological window size can only make γ suboptimal,
//! never invalid.

use crate::error::Result;
use crate::numeric::{f64_to_u64, u64_to_f64};

/// Network cost (in events) of one global window processed with slice
/// factor `gamma`, per the paper's cost model.
///
/// `l_g` is the global window size, `m` the number of candidate slices.
#[inline]
pub fn cost(l_g: u64, m: u64, gamma: u64) -> f64 {
    let g = u64_to_f64(gamma.max(2));
    2.0 * u64_to_f64(l_g) / g + u64_to_f64(m) * (g - 2.0)
}

/// The γ minimizing [`cost`] for the given window size and candidate count,
/// clamped to `[2, l_g.max(2)]`.
///
/// Evaluates the discrete cost at the floor/ceil of the continuous optimum
/// `√(2·l_G/m)` and picks the cheaper, so the result is the true integer
/// minimizer (the cost function is strictly convex in γ).
pub fn optimal_gamma(l_g: u64, m: u64) -> u64 {
    let hi = l_g.max(2);
    if m == 0 {
        // No candidate traffic observed: synopsis cost dominates, use the
        // largest sensible slice (one slice per window).
        return hi;
    }
    let star = (2.0 * u64_to_f64(l_g) / u64_to_f64(m)).sqrt();
    let lo_cand = f64_to_u64(star.floor()).clamp(2, hi);
    let hi_cand = f64_to_u64(star.ceil()).clamp(2, hi);
    if cost(l_g, m, lo_cand) <= cost(l_g, m, hi_cand) {
        lo_cand
    } else {
        hi_cand
    }
}

/// Smoothed per-window γ controller run by the root node.
///
/// After each calculation step the root feeds the observed window size and
/// candidate-slice count into [`AdaptiveGamma::observe`]; the returned γ is
/// broadcast to the local nodes for the next window ("the current window can
/// reuse the optimal γ from the previous window").
#[derive(Debug, Clone)]
pub struct AdaptiveGamma {
    /// Exponential smoothing factor for observations, in `(0, 1]`;
    /// 1.0 = react instantly to the last window.
    alpha: f64,
    /// Smoothed estimate of the global window size.
    l_g: f64,
    /// Smoothed estimate of the candidate-slice count.
    m: f64,
    /// Lower clamp for emitted γ.
    min_gamma: u64,
    /// Upper clamp for emitted γ.
    max_gamma: u64,
    /// Currently recommended γ.
    current: u64,
    observations: u64,
}

impl AdaptiveGamma {
    /// Create a controller starting at `initial` γ.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]` or `min_gamma < 2` or
    /// `min_gamma > max_gamma`.
    pub fn new(initial: u64, alpha: f64, min_gamma: u64, max_gamma: u64) -> AdaptiveGamma {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(min_gamma >= 2, "γ must be at least 2");
        assert!(
            min_gamma <= max_gamma,
            "min_gamma must not exceed max_gamma"
        );
        AdaptiveGamma {
            alpha,
            l_g: 0.0,
            m: 0.0,
            min_gamma,
            max_gamma,
            current: initial.clamp(min_gamma, max_gamma),
            observations: 0,
        }
    }

    /// A controller with sensible defaults: start at `initial`, smoothing
    /// factor 0.5, γ ∈ [2, 2²⁰].
    pub fn with_default_bounds(initial: u64) -> AdaptiveGamma {
        AdaptiveGamma::new(initial, 0.5, 2, 1 << 20)
    }

    /// γ to use for the next window.
    #[inline]
    pub fn current(&self) -> u64 {
        self.current
    }

    /// Number of windows observed so far.
    #[inline]
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Feed the outcome of one window (its size and how many candidate
    /// slices its identification step produced); returns the γ for the next
    /// window.
    pub fn observe(&mut self, l_g: u64, m: u64) -> u64 {
        if self.observations == 0 {
            self.l_g = u64_to_f64(l_g);
            self.m = u64_to_f64(m);
        } else {
            self.l_g = self.alpha * u64_to_f64(l_g) + (1.0 - self.alpha) * self.l_g;
            self.m = self.alpha * u64_to_f64(m) + (1.0 - self.alpha) * self.m;
        }
        self.observations += 1;
        let l = f64_to_u64(self.l_g.round());
        let m_est = f64_to_u64(self.m.round());
        self.current = optimal_gamma(l, m_est).clamp(self.min_gamma, self.max_gamma);
        self.current
    }

    /// [`AdaptiveGamma::observe`] with the invariant layer auditing the
    /// outcome: the pre-clamp γ must satisfy the cost-model bracketing
    /// ([`crate::invariant::check_gamma`]) and the emitted γ must be exactly
    /// its clamp into `[min_gamma, max_gamma]`.
    ///
    /// # Errors
    /// [`crate::DemaError::InvariantViolation`] if the controller's γ fails
    /// the audit. No-op audit (always `Ok`) when the invariant layer is
    /// disabled.
    pub fn observe_checked(&mut self, l_g: u64, m: u64) -> Result<u64> {
        let emitted = self.observe(l_g, m);
        if crate::invariant::enabled() {
            let l = f64_to_u64(self.l_g.round());
            let m_est = f64_to_u64(self.m.round());
            let unclamped = optimal_gamma(l, m_est);
            crate::invariant::check_gamma(l, m_est, unclamped)?;
            if emitted != unclamped.clamp(self.min_gamma, self.max_gamma) {
                return Err(crate::DemaError::InvariantViolation(format!(
                    "gamma controller emitted {emitted}, expected clamp of {unclamped}"
                )));
            }
        }
        Ok(emitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_matches_formula() {
        // Cost = 2*l_G/γ + m*(γ-2)
        assert_eq!(cost(10_000, 3, 100), 2.0 * 10_000.0 / 100.0 + 3.0 * 98.0);
        assert_eq!(cost(0, 0, 10), 0.0);
    }

    #[test]
    fn cost_clamps_degenerate_gamma() {
        // γ < 2 is treated as 2 rather than dividing by something silly.
        assert_eq!(cost(100, 1, 0), cost(100, 1, 2));
    }

    #[test]
    fn optimal_gamma_is_discrete_argmin() {
        for &(l_g, m) in &[
            (1_000u64, 1u64),
            (10_000, 3),
            (100_000, 7),
            (123, 5),
            (2, 1),
        ] {
            let g = optimal_gamma(l_g, m);
            let best = (2..=l_g.max(2))
                .min_by(|&a, &b| cost(l_g, m, a).partial_cmp(&cost(l_g, m, b)).unwrap())
                .unwrap();
            assert_eq!(
                cost(l_g, m, g),
                cost(l_g, m, best),
                "l_g={l_g} m={m}: got γ={g}, argmin γ={best}"
            );
        }
    }

    #[test]
    fn optimal_gamma_closed_form_shape() {
        // γ* = sqrt(2 l_G / m): quadrupling l_G doubles γ*.
        let g1 = optimal_gamma(10_000, 4);
        let g2 = optimal_gamma(40_000, 4);
        assert!((g2 as f64 / g1 as f64 - 2.0).abs() < 0.1, "{g1} vs {g2}");
    }

    #[test]
    fn optimal_gamma_no_candidates() {
        assert_eq!(optimal_gamma(500, 0), 500);
        assert_eq!(optimal_gamma(0, 0), 2);
    }

    #[test]
    fn optimal_gamma_never_below_two() {
        assert!(optimal_gamma(2, 1000) >= 2);
        assert!(optimal_gamma(0, 5) >= 2);
    }

    #[test]
    fn controller_converges_on_stable_workload() {
        let mut ctl = AdaptiveGamma::with_default_bounds(10_000);
        let mut last = 0;
        for _ in 0..20 {
            last = ctl.observe(1_000_000, 2);
        }
        let expect = optimal_gamma(1_000_000, 2);
        assert_eq!(last, expect);
        assert_eq!(ctl.current(), expect);
        assert_eq!(ctl.observations(), 20);
    }

    #[test]
    fn controller_tracks_drifting_window_size() {
        let mut ctl = AdaptiveGamma::new(100, 0.5, 2, 1 << 20);
        for _ in 0..10 {
            ctl.observe(10_000, 2);
        }
        let small = ctl.current();
        for _ in 0..20 {
            ctl.observe(1_000_000, 2);
        }
        let large = ctl.current();
        assert!(
            large > small,
            "γ should grow with window size: {small} -> {large}"
        );
    }

    #[test]
    fn controller_respects_bounds() {
        let mut ctl = AdaptiveGamma::new(50, 1.0, 10, 100);
        assert_eq!(ctl.observe(1_000_000_000, 1), 100);
        assert_eq!(ctl.observe(4, 1_000_000), 10);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        let _ = AdaptiveGamma::new(10, 0.0, 2, 100);
    }

    #[test]
    #[should_panic(expected = "γ must be at least 2")]
    fn bad_min_gamma_panics() {
        let _ = AdaptiveGamma::new(10, 0.5, 1, 100);
    }

    #[test]
    fn first_observation_seeds_estimates() {
        let mut ctl = AdaptiveGamma::new(7, 0.1, 2, 1 << 20);
        // Even with tiny alpha, the first observation must take full effect.
        let g = ctl.observe(800_000, 2);
        assert_eq!(g, optimal_gamma(800_000, 2));
    }

    #[test]
    fn observe_checked_matches_observe() {
        let mut a = AdaptiveGamma::with_default_bounds(100);
        let mut b = AdaptiveGamma::with_default_bounds(100);
        for (l, m) in [(10_000u64, 3u64), (50_000, 7), (0, 0), (2, 1)] {
            assert_eq!(b.observe_checked(l, m).unwrap(), a.observe(l, m));
        }
    }

    #[test]
    fn edge_no_candidates_m_zero() {
        // m = 0: no calculation traffic, one slice per window is optimal and
        // the controller must not divide by zero.
        assert_eq!(optimal_gamma(1_000_000, 0), 1_000_000);
        assert!(cost(1_000_000, 0, 1_000_000).is_finite());
        let mut ctl = AdaptiveGamma::new(10, 1.0, 2, u64::MAX);
        assert_eq!(ctl.observe_checked(1_000, 0).unwrap(), 1_000);
    }

    #[test]
    fn edge_degenerate_window_l_g_below_two() {
        // l_G < 2: γ is still clamped to the legal floor of 2.
        for l_g in [0u64, 1] {
            for m in [0u64, 1, 5] {
                let g = optimal_gamma(l_g, m);
                assert_eq!(g, 2, "l_g={l_g} m={m}");
                assert!(cost(l_g, m, g).is_finite());
            }
        }
        let mut ctl = AdaptiveGamma::with_default_bounds(64);
        assert_eq!(ctl.observe_checked(1, 1).unwrap(), 2);
        assert_eq!(ctl.observe_checked(0, 0).unwrap(), 2);
    }

    #[test]
    fn edge_window_near_u64_max() {
        // Above 2^53 the float cost model loses integer precision; the
        // conversions must saturate rather than wrap, and every emitted γ
        // must stay in [2, l_G].
        for l_g in [u64::MAX, u64::MAX - 1, (1 << 53) + 1] {
            for m in [0u64, 1, 1_000_000] {
                let g = optimal_gamma(l_g, m);
                assert!((2..=l_g).contains(&g), "l_g={l_g} m={m} γ={g}");
                assert!(cost(l_g, m, g).is_finite());
            }
        }
        // The controller's smoothed estimate rounds to a float above
        // u64::MAX; f64_to_u64 saturation keeps γ legal.
        let mut ctl = AdaptiveGamma::new(2, 1.0, 2, u64::MAX);
        let g = ctl.observe(u64::MAX, 1);
        assert!(g >= 2);
        let mut ctl = AdaptiveGamma::new(2, 1.0, 2, u64::MAX);
        assert!(ctl.observe_checked(u64::MAX, 1).is_ok());
    }
}
