//! The calculation step: merge pre-sorted candidate runs and pick the
//! target rank (§3.1).
//!
//! Local nodes ship candidate slices already sorted, so the root never
//! re-sorts: it performs a k-way merge over the runs. For quantile lookups
//! the merge can stop as soon as the target position is reached
//! ([`select_kth`]), costing `O(k · log r)` for `r` runs instead of merging
//! everything.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::error::{DemaError, Result};
use crate::event::Event;

/// Fully merge sorted runs into one sorted vector.
///
/// # Panics
/// Debug-asserts each input run is sorted.
pub fn merge_runs(runs: &[Vec<Event>]) -> Vec<Event> {
    for r in runs {
        debug_assert!(crate::event::is_sorted(r));
    }
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut heap: BinaryHeap<Reverse<(Event, usize)>> = runs
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.first().map(|&e| Reverse((e, i))))
        .collect();
    let mut cursors = vec![1usize; runs.len()];
    while let Some(Reverse((e, run))) = heap.pop() {
        out.push(e);
        let c = cursors[run];
        if let Some(&next) = runs[run].get(c) {
            cursors[run] = c + 1;
            heap.push(Reverse((next, run)));
        }
    }
    out
}

/// Return the event at 1-based position `k` of the merged order of `runs`
/// without materializing the merge.
///
/// # Errors
/// [`DemaError::RankOutOfRange`] if `k` is 0 or exceeds the total length.
pub fn select_kth(runs: &[Vec<Event>], k: u64) -> Result<Event> {
    let total: u64 = runs.iter().map(|r| r.len() as u64).sum();
    if k == 0 || k > total {
        return Err(DemaError::RankOutOfRange { rank: k, total });
    }
    for r in runs {
        debug_assert!(crate::event::is_sorted(r));
    }
    let mut heap: BinaryHeap<Reverse<(Event, usize)>> = runs
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.first().map(|&e| Reverse((e, i))))
        .collect();
    let mut cursors = vec![1usize; runs.len()];
    let mut remaining = k;
    loop {
        let Reverse((e, run)) = heap.pop().expect("k <= total guarantees an element");
        remaining -= 1;
        if remaining == 0 {
            return Ok(e);
        }
        let c = cursors[run];
        if let Some(&next) = runs[run].get(c) {
            cursors[run] = c + 1;
            heap.push(Reverse((next, run)));
        }
    }
}

/// Incrementally merge candidate runs as they arrive, then select a rank.
///
/// This mirrors the paper's root-node behaviour: "Dema incrementally merges
/// arriving candidate events into the candidate slice" — runs may arrive in
/// any order; the answer is produced once all expected runs are present.
#[derive(Debug, Default)]
pub struct CandidateMerger {
    runs: Vec<Vec<Event>>,
    expected: usize,
}

impl CandidateMerger {
    /// Create a merger expecting `expected` candidate runs.
    pub fn new(expected: usize) -> CandidateMerger {
        CandidateMerger { runs: Vec::with_capacity(expected), expected }
    }

    /// Add one delivered candidate run (sorted events of one slice).
    pub fn add_run(&mut self, events: Vec<Event>) {
        debug_assert!(crate::event::is_sorted(&events));
        self.runs.push(events);
    }

    /// Number of runs still missing.
    pub fn missing(&self) -> usize {
        self.expected.saturating_sub(self.runs.len())
    }

    /// `true` once every expected run has been delivered.
    pub fn complete(&self) -> bool {
        self.runs.len() >= self.expected
    }

    /// Select the event at 1-based merged position `k`.
    ///
    /// # Errors
    /// * [`DemaError::MissingCandidate`] if runs are still outstanding.
    /// * [`DemaError::RankOutOfRange`] if `k` is outside the merged length.
    pub fn select(&self, k: u64) -> Result<Event> {
        if !self.complete() {
            return Err(DemaError::MissingCandidate {
                slice: format!("{} of {} runs missing", self.missing(), self.expected),
            });
        }
        select_kth(&self.runs, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(v: i64) -> Event {
        Event::new(v, 0, v as u64)
    }

    fn run(vals: &[i64]) -> Vec<Event> {
        vals.iter().map(|&v| ev(v)).collect()
    }

    #[test]
    fn merge_two_runs() {
        let merged = merge_runs(&[run(&[1, 3, 5]), run(&[2, 4, 6])]);
        let vals: Vec<i64> = merged.iter().map(|e| e.value).collect();
        assert_eq!(vals, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn merge_handles_empty_runs() {
        let merged = merge_runs(&[run(&[]), run(&[7]), run(&[])]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].value, 7);
        assert!(merge_runs(&[]).is_empty());
    }

    #[test]
    fn merge_with_duplicates_is_stable_by_event_order() {
        let a = vec![Event::new(5, 0, 1), Event::new(5, 0, 3)];
        let b = vec![Event::new(5, 0, 2)];
        let merged = merge_runs(&[a, b]);
        let ids: Vec<u64> = merged.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![1, 2, 3]); // total event order, deterministic
    }

    #[test]
    fn merge_many_runs_matches_global_sort() {
        let runs: Vec<Vec<Event>> = (0..10)
            .map(|i| (0..50).map(|j| ev((j * 10 + i) as i64)).collect())
            .collect();
        let merged = merge_runs(&runs);
        let mut expected: Vec<Event> = runs.concat();
        expected.sort_unstable();
        assert_eq!(merged, expected);
    }

    #[test]
    fn select_kth_matches_full_merge() {
        let runs = vec![run(&[1, 4, 9, 16]), run(&[2, 3, 5, 8]), run(&[0, 7])];
        let merged = merge_runs(&runs);
        for k in 1..=merged.len() as u64 {
            assert_eq!(select_kth(&runs, k).unwrap(), merged[(k - 1) as usize]);
        }
    }

    #[test]
    fn select_kth_bounds() {
        let runs = vec![run(&[1, 2])];
        assert!(matches!(select_kth(&runs, 0), Err(DemaError::RankOutOfRange { .. })));
        assert!(matches!(select_kth(&runs, 3), Err(DemaError::RankOutOfRange { .. })));
        assert!(matches!(select_kth(&[], 1), Err(DemaError::RankOutOfRange { .. })));
    }

    #[test]
    fn merger_waits_for_all_runs() {
        let mut m = CandidateMerger::new(2);
        m.add_run(run(&[1, 2]));
        assert!(!m.complete());
        assert_eq!(m.missing(), 1);
        assert!(matches!(m.select(1), Err(DemaError::MissingCandidate { .. })));
        m.add_run(run(&[0, 3]));
        assert!(m.complete());
        assert_eq!(m.select(1).unwrap().value, 0);
        assert_eq!(m.select(3).unwrap().value, 2);
    }

    #[test]
    fn merger_with_zero_expected_is_immediately_complete() {
        let m = CandidateMerger::new(0);
        assert!(m.complete());
        assert!(matches!(m.select(1), Err(DemaError::RankOutOfRange { .. })));
    }
}
