//! The calculation step: merge pre-sorted candidate runs and pick the
//! target rank (§3.1).
//!
//! Local nodes ship candidate slices already sorted, so the root never
//! re-sorts: it performs a k-way merge over the runs with a loser tree
//! (tournament tree). Emitting the next event costs exactly `⌈log₂ r⌉`
//! comparisons along one root-to-leaf path — no sift-down branching like a
//! binary heap — and for quantile lookups the merge stops as soon as the
//! target position is reached ([`select_kth`]), costing `O(k · log r)` for
//! `r` runs instead of merging everything.
//!
//! The pop order is the total `(event, run index)` order, the same
//! tie-break the previous heap-based merge used, so outputs are
//! bit-identical (pinned by the oracle property tests below).

use std::cell::RefCell;

use crate::error::{DemaError, Result};
use crate::event::Event;
use crate::numeric::len_to_u64;
use crate::shared::SharedRun;

/// Sentinel "run index" that loses every match; pads the tournament while
/// the tree fills and after runs exhaust.
const NO_RUN: usize = usize::MAX;

thread_local! {
    /// Loser-tree scratch (cursor array, tree array, build-time winner
    /// array), reused across windows: the root's merge/select work for
    /// window `w+1` replays the capacities window `w` grew, so the
    /// steady-state calculation step performs no allocator round-trips
    /// (the merge-select half of lint rule R15; the sort-side twin is the
    /// `SCRATCH` buffer in [`crate::par`]).
    static SCRATCH: RefCell<(Vec<usize>, Vec<usize>, Vec<usize>)> =
        const { RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
}

/// A k-way loser-tree merge cursor over sorted runs.
///
/// Internal node `i ≥ 1` of `tree` stores the run that *lost* the match at
/// that node; `tree[0]` stores the overall winner. Leaves are implicit:
/// leaf `j` sits at position `m + j` and its current key is
/// `runs[j][cursors[j]]`. Advancing the winner replays one root-to-leaf
/// path — `⌈log₂ m⌉` comparisons, nothing else moves.
///
/// Generic over the run container (`Vec<Event>`, [`SharedRun`],
/// `&[Event]`), so entry points never collect a `Vec<&[Event]>` view
/// first; the cursor and tree arrays are borrowed from the thread-local
/// [`SCRATCH`] and sized in place.
struct LoserTree<'a, R: AsRef<[Event]>> {
    runs: &'a [R],
    cursors: &'a mut Vec<usize>,
    tree: &'a mut Vec<usize>,
}

impl<'a, R: AsRef<[Event]>> LoserTree<'a, R> {
    fn new(
        runs: &'a [R],
        cursors: &'a mut Vec<usize>,
        tree: &'a mut Vec<usize>,
        winner: &mut Vec<usize>,
    ) -> LoserTree<'a, R> {
        let m = runs.len();
        cursors.clear();
        cursors.resize(m, 0);
        tree.clear();
        tree.resize(m.max(1), NO_RUN);
        let mut lt = LoserTree {
            runs,
            cursors,
            tree,
        };
        lt.build(winner);
        lt
    }

    /// Current key of run `i`, `None` once exhausted (or for [`NO_RUN`]).
    fn current(&self, i: usize) -> Option<Event> {
        self.runs
            .get(i)
            .zip(self.cursors.get(i))
            .and_then(|(r, &c)| r.as_ref().get(c).copied())
    }

    /// `true` if run `a` wins the match against run `b`: live beats
    /// exhausted, and ties — equal events, or two exhausted runs — resolve
    /// by run index, reproducing the heap merge's `(event, run)` order.
    fn beats(&self, a: usize, b: usize) -> bool {
        match (self.current(a), self.current(b)) {
            (Some(ea), Some(eb)) => (ea, a) < (eb, b),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => a < b,
        }
    }

    /// Play the full tournament bottom-up: each internal node keeps its
    /// loser, winners advance, `tree[0]` gets the champion.
    fn build(&mut self, winner: &mut Vec<usize>) {
        let m = self.runs.len();
        if m == 0 {
            return;
        }
        winner.clear();
        winner.resize(2 * m, NO_RUN);
        for (j, w) in winner.iter_mut().skip(m).enumerate() {
            *w = j;
        }
        for node in (1..m).rev() {
            let (a, b) = (winner[2 * node], winner[2 * node + 1]);
            let (win, lose) = if self.beats(a, b) { (a, b) } else { (b, a) };
            winner[node] = win;
            self.tree[node] = lose;
        }
        self.tree[0] = winner[1];
    }

    /// Re-run the matches on the path from run `run`'s leaf to the root
    /// after its key changed.
    fn replay(&mut self, run: usize) {
        let m = self.runs.len();
        let mut winner = run;
        let mut node = (run + m) / 2;
        while node >= 1 {
            if self.beats(self.tree[node], winner) {
                std::mem::swap(&mut self.tree[node], &mut winner);
            }
            node /= 2;
        }
        self.tree[0] = winner;
    }

    /// Emit the smallest remaining event and advance its run.
    fn pop(&mut self) -> Option<Event> {
        let win = self.tree[0];
        let event = self.current(win)?;
        self.cursors[win] += 1;
        self.replay(win);
        Some(event)
    }
}

/// Fully merge sorted runs into one sorted vector.
///
/// Accepts anything slice-shaped — `Vec<Event>`, [`SharedRun`], `&[Event]` —
/// so callers never have to copy into a particular container first. The
/// output buffer is reserved exactly once at the merged length `l_G`; a
/// debug assertion guards against any regression that reallocates.
///
/// # Panics
/// Debug-asserts each input run is sorted.
// hot-path: merge-select
pub fn merge_runs<R: AsRef<[Event]>>(runs: &[R]) -> Vec<Event> {
    let _phase = crate::alloc::enter_phase(crate::alloc::Phase::Merge);
    for r in runs {
        debug_assert!(crate::event::is_sorted(r.as_ref()));
    }
    let total: usize = runs.iter().map(|r| r.as_ref().len()).sum();
    let mut out = Vec::with_capacity(total);
    let cap = out.capacity();
    SCRATCH.with(|s| {
        let mut guard = s.borrow_mut();
        let (cursors, tree, winner) = &mut *guard;
        let mut tree = LoserTree::new(runs, cursors, tree, winner);
        while let Some(e) = tree.pop() {
            out.push(e);
        }
    });
    debug_assert_eq!(out.len(), total);
    debug_assert_eq!(out.capacity(), cap, "merge must allocate exactly once");
    out
}

/// Return the event at 1-based position `k` of the merged order of `runs`
/// without materializing the merge.
///
/// Like [`merge_runs`], generic over the run container.
///
/// # Errors
/// [`DemaError::RankOutOfRange`] if `k` is 0 or exceeds the total length.
pub fn select_kth<R: AsRef<[Event]>>(runs: &[R], k: u64) -> Result<Event> {
    let _phase = crate::alloc::enter_phase(crate::alloc::Phase::Merge);
    let total: u64 = runs.iter().map(|r| len_to_u64(r.as_ref().len())).sum();
    if k == 0 || k > total {
        return Err(DemaError::RankOutOfRange { rank: k, total });
    }
    for r in runs {
        debug_assert!(crate::event::is_sorted(r.as_ref()));
    }
    let found = SCRATCH.with(|s| {
        let mut guard = s.borrow_mut();
        let (cursors, tree, winner) = &mut *guard;
        let mut tree = LoserTree::new(runs, cursors, tree, winner);
        let mut remaining = k;
        while let Some(e) = tree.pop() {
            remaining -= 1;
            if remaining == 0 {
                return Some(e);
            }
        }
        None
    });
    // The `None` arm is unreachable while `k <= total`: the tree only drains
    // after yielding every event. Kept as an error so a future refactor
    // cannot panic here.
    found.ok_or(DemaError::RankOutOfRange { rank: k, total })
}

/// Incrementally merge candidate runs as they arrive, then select a rank.
///
/// This mirrors the paper's root-node behaviour: "Dema incrementally merges
/// arriving candidate events into the candidate slice" — runs may arrive in
/// any order; the answer is produced once all expected runs are present.
#[derive(Debug, Default)]
pub struct CandidateMerger {
    runs: Vec<SharedRun>,
    expected: usize,
}

impl CandidateMerger {
    /// Create a merger expecting `expected` candidate runs.
    pub fn new(expected: usize) -> CandidateMerger {
        CandidateMerger {
            runs: Vec::with_capacity(expected),
            expected,
        }
    }

    /// Add one delivered candidate run (sorted events of one slice).
    ///
    /// Takes the shared representation directly: a run arriving off the wire
    /// or out of the local store is kept by refcount, never copied.
    pub fn add_run(&mut self, events: impl Into<SharedRun>) {
        let events = events.into();
        debug_assert!(crate::event::is_sorted(&events));
        self.runs.push(events);
    }

    /// Number of runs still missing.
    pub fn missing(&self) -> usize {
        self.expected.saturating_sub(self.runs.len())
    }

    /// `true` once every expected run has been delivered.
    pub fn complete(&self) -> bool {
        self.runs.len() >= self.expected
    }

    /// Select the event at 1-based merged position `k`.
    ///
    /// # Errors
    /// * [`DemaError::MissingCandidate`] if runs are still outstanding.
    /// * [`DemaError::RankOutOfRange`] if `k` is outside the merged length.
    pub fn select(&self, k: u64) -> Result<Event> {
        if !self.complete() {
            return Err(DemaError::MissingCandidate {
                slice: format!("{} of {} runs missing", self.missing(), self.expected),
            });
        }
        select_kth(&self.runs, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-loser-tree implementation (binary heap over
    /// `(event, run index)`), kept verbatim as the oracle the rewrite must
    /// match bit-for-bit.
    mod oracle {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        use super::*;

        pub fn merge_runs<R: AsRef<[Event]>>(runs: &[R]) -> Vec<Event> {
            let runs: Vec<&[Event]> = runs.iter().map(AsRef::as_ref).collect();
            let total: usize = runs.iter().map(|r| r.len()).sum();
            let mut out = Vec::with_capacity(total);
            let mut heap: BinaryHeap<Reverse<(Event, usize)>> = runs
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.first().map(|&e| Reverse((e, i))))
                .collect();
            let mut cursors = vec![1usize; runs.len()];
            while let Some(Reverse((e, run))) = heap.pop() {
                out.push(e);
                let c = cursors[run];
                if let Some(&next) = runs[run].get(c) {
                    cursors[run] = c + 1;
                    heap.push(Reverse((next, run)));
                }
            }
            out
        }

        pub fn select_kth<R: AsRef<[Event]>>(runs: &[R], k: u64) -> Result<Event> {
            let runs: Vec<&[Event]> = runs.iter().map(AsRef::as_ref).collect();
            let total: u64 = runs.iter().map(|r| len_to_u64(r.len())).sum();
            if k == 0 || k > total {
                return Err(DemaError::RankOutOfRange { rank: k, total });
            }
            let mut heap: BinaryHeap<Reverse<(Event, usize)>> = runs
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.first().map(|&e| Reverse((e, i))))
                .collect();
            let mut cursors = vec![1usize; runs.len()];
            let mut remaining = k;
            while let Some(Reverse((e, run))) = heap.pop() {
                remaining -= 1;
                if remaining == 0 {
                    return Ok(e);
                }
                let c = cursors[run];
                if let Some(&next) = runs[run].get(c) {
                    cursors[run] = c + 1;
                    heap.push(Reverse((next, run)));
                }
            }
            Err(DemaError::RankOutOfRange { rank: k, total })
        }
    }

    fn ev(v: i64) -> Event {
        Event::new(v, 0, v as u64)
    }

    fn run(vals: &[i64]) -> Vec<Event> {
        vals.iter().map(|&v| ev(v)).collect()
    }

    #[test]
    fn merge_two_runs() {
        let merged = merge_runs(&[run(&[1, 3, 5]), run(&[2, 4, 6])]);
        let vals: Vec<i64> = merged.iter().map(|e| e.value).collect();
        assert_eq!(vals, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn merge_handles_empty_runs() {
        let merged = merge_runs(&[run(&[]), run(&[7]), run(&[])]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].value, 7);
        assert!(merge_runs::<Vec<Event>>(&[]).is_empty());
    }

    #[test]
    fn merge_with_duplicates_is_stable_by_event_order() {
        let a = vec![Event::new(5, 0, 1), Event::new(5, 0, 3)];
        let b = vec![Event::new(5, 0, 2)];
        let merged = merge_runs(&[a, b]);
        let ids: Vec<u64> = merged.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![1, 2, 3]); // total event order, deterministic
    }

    #[test]
    fn merge_many_runs_matches_global_sort() {
        let runs: Vec<Vec<Event>> = (0..10)
            .map(|i| (0..50).map(|j| ev((j * 10 + i) as i64)).collect())
            .collect();
        let merged = merge_runs(&runs);
        let mut expected: Vec<Event> = runs.concat();
        expected.sort_unstable();
        assert_eq!(merged, expected);
    }

    #[test]
    fn select_kth_matches_full_merge() {
        let runs = vec![run(&[1, 4, 9, 16]), run(&[2, 3, 5, 8]), run(&[0, 7])];
        let merged = merge_runs(&runs);
        for k in 1..=merged.len() as u64 {
            assert_eq!(select_kth(&runs, k).unwrap(), merged[(k - 1) as usize]);
        }
    }

    #[test]
    fn select_kth_bounds() {
        let runs = vec![run(&[1, 2])];
        assert!(matches!(
            select_kth(&runs, 0),
            Err(DemaError::RankOutOfRange { .. })
        ));
        assert!(matches!(
            select_kth(&runs, 3),
            Err(DemaError::RankOutOfRange { .. })
        ));
        assert!(matches!(
            select_kth::<Vec<Event>>(&[], 1),
            Err(DemaError::RankOutOfRange { .. })
        ));
    }

    #[test]
    fn merger_waits_for_all_runs() {
        let mut m = CandidateMerger::new(2);
        m.add_run(run(&[1, 2]));
        assert!(!m.complete());
        assert_eq!(m.missing(), 1);
        assert!(matches!(
            m.select(1),
            Err(DemaError::MissingCandidate { .. })
        ));
        m.add_run(run(&[0, 3]));
        assert!(m.complete());
        assert_eq!(m.select(1).unwrap().value, 0);
        assert_eq!(m.select(3).unwrap().value, 2);
    }

    #[test]
    fn merger_with_zero_expected_is_immediately_complete() {
        let m = CandidateMerger::new(0);
        assert!(m.complete());
        assert!(matches!(m.select(1), Err(DemaError::RankOutOfRange { .. })));
    }

    #[test]
    fn merger_accepts_shared_runs_without_copying() {
        use crate::shared::SharedRun;
        let shared = SharedRun::from_vec(run(&[1, 2, 3, 4]));
        let mut m = CandidateMerger::new(2);
        m.add_run(shared.slice(0..2));
        m.add_run(shared.slice(2..4));
        assert!(m.complete());
        assert_eq!(m.select(3).unwrap().value, 3);
    }

    #[test]
    fn select_kth_duplicate_values_tie_break_on_event_order() {
        // Equal values across runs resolve by the derived Event order
        // (value, ts, id) — the merged position of every duplicate is
        // deterministic regardless of run arrangement.
        let a = vec![Event::new(5, 0, 1), Event::new(5, 0, 4)];
        let b = vec![Event::new(5, 0, 2), Event::new(5, 0, 5)];
        let c = vec![Event::new(5, 0, 3)];
        let runs = [a, b, c];
        for (k, want_id) in (1..=5).zip([1u64, 2, 3, 4, 5]) {
            assert_eq!(select_kth(&runs, k).unwrap().id, want_id, "k={k}");
        }
    }

    #[test]
    fn select_kth_with_empty_runs_interleaved() {
        let runs = vec![run(&[]), run(&[2, 4]), run(&[]), run(&[1, 3]), run(&[])];
        assert_eq!(select_kth(&runs, 1).unwrap().value, 1);
        assert_eq!(select_kth(&runs, 4).unwrap().value, 4);
        let merged = merge_runs(&runs);
        let vals: Vec<i64> = merged.iter().map(|e| e.value).collect();
        assert_eq!(vals, vec![1, 2, 3, 4]);
    }

    #[test]
    fn select_kth_first_and_last_rank() {
        let runs = vec![run(&[10, 30]), run(&[-5, 20, 40])];
        assert_eq!(select_kth(&runs, 1).unwrap().value, -5); // k = 1
        assert_eq!(select_kth(&runs, 5).unwrap().value, 40); // k = total
    }

    #[test]
    fn generic_over_run_containers() {
        // The same call sites work with Vec, SharedRun, and plain slices.
        use crate::shared::SharedRun;
        let vecs = vec![run(&[1, 3]), run(&[2])];
        let shared: Vec<SharedRun> = vecs.iter().cloned().map(SharedRun::from_vec).collect();
        let borrowed: Vec<&[Event]> = vecs.iter().map(|v| v.as_slice()).collect();
        let expect = merge_runs(&vecs);
        assert_eq!(merge_runs(&shared), expect);
        assert_eq!(merge_runs(&borrowed), expect);
        assert_eq!(select_kth(&shared, 2).unwrap(), expect[1]);
        assert_eq!(select_kth(&borrowed, 2).unwrap(), expect[1]);
    }

    #[test]
    fn loser_tree_matches_oracle_on_adversarial_cases() {
        // Duplicate values with event-order tie-breaks across many runs,
        // empty runs interleaved, and run counts around the power-of-two
        // boundaries of the tournament layout.
        let dup = |id: u64| Event::new(5, 0, id);
        let cases: Vec<Vec<Vec<Event>>> = vec![
            vec![],
            vec![run(&[])],
            vec![run(&[]), run(&[]), run(&[])],
            vec![vec![dup(1), dup(4)], vec![dup(2), dup(5)], vec![dup(3)]],
            vec![run(&[]), run(&[2, 4]), run(&[]), run(&[1, 3]), run(&[])],
            (0..7).map(|i| run(&[i, i + 7, i + 14])).collect(),
            (0..8).map(|_| vec![dup(9), dup(9)]).collect(),
            (0..9)
                .map(|i| {
                    if i % 2 == 0 {
                        run(&[i, i + 10])
                    } else {
                        run(&[])
                    }
                })
                .collect(),
        ];
        for (n, runs) in cases.iter().enumerate() {
            let expect = oracle::merge_runs(runs);
            assert_eq!(merge_runs(runs), expect, "case {n}");
            for k in 1..=len_to_u64(expect.len()) {
                assert_eq!(
                    select_kth(runs, k).unwrap(),
                    oracle::select_kth(runs, k).unwrap(),
                    "case {n}, k={k}"
                );
            }
            // k at the first and last rank plus both out-of-range edges.
            assert!(select_kth(runs, 0).is_err());
            assert!(select_kth(runs, len_to_u64(expect.len()) + 1).is_err());
        }
    }

    #[test]
    fn merge_reserves_exactly_the_merged_length() {
        let runs = vec![run(&[1, 3, 5]), run(&[2, 4]), run(&[])];
        let merged = merge_runs(&runs);
        assert_eq!(merged.len(), 5);
        assert_eq!(merged.capacity(), 5, "one exact up-front reservation");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Turn arbitrary (value, count) pairs into a set of sorted runs
        /// with globally unique ids.
        fn runs_from(raw: Vec<Vec<i64>>) -> Vec<Vec<Event>> {
            let mut id = 0u64;
            raw.into_iter()
                .map(|vals| {
                    let mut events: Vec<Event> = vals
                        .into_iter()
                        .map(|v| {
                            id += 1;
                            Event::new(v, 0, id)
                        })
                        .collect();
                    events.sort_unstable();
                    events
                })
                .collect()
        }

        proptest! {
            #[test]
            fn select_kth_agrees_with_full_merge(
                raw in proptest::collection::vec(
                    proptest::collection::vec(-50i64..50, 0..12), 0..6),
            ) {
                let runs = runs_from(raw);
                let merged = merge_runs(&runs);
                for k in 1..=merged.len() as u64 {
                    prop_assert_eq!(
                        select_kth(&runs, k).unwrap(),
                        merged[(k - 1) as usize]
                    );
                }
                // Out-of-range ranks always error.
                prop_assert!(select_kth(&runs, 0).is_err());
                prop_assert!(select_kth(&runs, merged.len() as u64 + 1).is_err());
            }

            #[test]
            fn merge_matches_global_sort(
                raw in proptest::collection::vec(
                    proptest::collection::vec(-50i64..50, 0..12), 0..6),
            ) {
                let runs = runs_from(raw);
                let mut expected: Vec<Event> = runs.concat();
                expected.sort_unstable();
                prop_assert_eq!(merge_runs(&runs), expected);
            }

            /// The loser tree reproduces the retired heap merge exactly,
            /// duplicate values (narrow range below) and all.
            #[test]
            fn loser_tree_is_bit_identical_to_heap_oracle(
                raw in proptest::collection::vec(
                    proptest::collection::vec(-4i64..4, 0..16), 0..9),
            ) {
                let runs = runs_from(raw);
                let expect = oracle::merge_runs(&runs);
                prop_assert_eq!(&merge_runs(&runs), &expect);
                for k in 1..=expect.len() as u64 {
                    prop_assert_eq!(
                        select_kth(&runs, k).unwrap(),
                        oracle::select_kth(&runs, k).unwrap()
                    );
                }
            }
        }
    }
}
