//! Counting global allocator with size-class recycling shelves — the
//! dynamic twin of lint rules R15–R17 (DESIGN.md §8), exactly as the
//! ranked lock tracker ([`crate::sync`]) backs R10–R13.
//!
//! Armed under `debug_assertions` or the `strict` feature, the allocator
//! wraps [`std::alloc::System`] with two layers:
//!
//! 1. **Counting.** Every allocation that reaches the system allocator is
//!    a *fresh* allocation, attributed to the current [`Phase`] (sort,
//!    slice, encode, decode, merge, or other — hot-path entry points set
//!    the phase via [`enter_phase`]). Reallocs and recycled requests are
//!    counted separately. [`snapshot`] reads the process-wide totals;
//!    `RunReport.alloc` folds the per-run delta into cluster reports.
//! 2. **Recycling shelves.** Freed blocks are kept on per-size-class
//!    shelves (an intrusive free list threaded through the freed blocks,
//!    one spinlocked shelf per exact `(size, align)` class, bounded by a
//!    global byte budget) and served back for identical layouts. A
//!    steady-state window loop whose allocation sizes repeat window over
//!    window therefore reaches a fixed point where *no* request is fresh
//!    — the constant-space steady state the paper's cost model claims,
//!    asserted by [`AllocGate::assert_zero_fresh`].
//!
//! Disarmed (release without `strict`), this module registers no global
//! allocator at all and every probe compiles to a constant: true
//! zero-cost passthrough.
//!
//! This is the one module of `dema-core` allowed `unsafe` (the
//! [`std::alloc::GlobalAlloc`] contract is unsafe by nature); the crate
//! root still denies it everywhere else.

use std::cell::Cell;

/// Number of attribution phases (the length of [`AllocSnapshot::fresh`]).
pub const PHASES: usize = 6;

/// Hot-path phase an allocation is attributed to.
///
/// Entry points of the per-window pipeline scope themselves with
/// [`enter_phase`]; everything outside a scoped region lands in
/// [`Phase::Other`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Unattributed (setup, teardown, bookkeeping).
    Other = 0,
    /// Per-window sort ([`crate::par::sort_events_with`]).
    Sort = 1,
    /// Window slicing ([`crate::slice::cut_into_slices`]).
    Slice = 2,
    /// Wire encode (`dema-wire` message/frame encoding).
    Encode = 3,
    /// Wire decode (`dema-wire` message/frame decoding).
    Decode = 4,
    /// K-way merge / selection ([`crate::merge`]).
    Merge = 5,
}

/// Human-readable name of phase index `i` (see [`AllocSnapshot::fresh`]).
pub fn phase_name(i: usize) -> &'static str {
    match i {
        1 => "sort",
        2 => "slice",
        3 => "encode",
        4 => "decode",
        5 => "merge",
        _ => "other",
    }
}

/// A point-in-time (or delta) reading of the allocator's counters.
///
/// All-zero when the allocator is disarmed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Fresh system allocations per phase (index = [`Phase`] as usize).
    pub fresh: [u64; PHASES],
    /// Bytes of those fresh allocations, per phase.
    pub fresh_bytes: [u64; PHASES],
    /// Requests served from the recycling shelves instead of the system.
    pub recycled: u64,
    /// `realloc` calls observed (each also counts its fresh/recycled side).
    pub reallocs: u64,
}

impl AllocSnapshot {
    /// Total fresh system allocations across all phases.
    pub fn fresh_total(&self) -> u64 {
        self.fresh.iter().sum()
    }

    /// Total fresh bytes across all phases.
    pub fn fresh_bytes_total(&self) -> u64 {
        self.fresh_bytes.iter().sum()
    }

    /// Counter deltas since `earlier` (saturating; counters only grow).
    pub fn since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        let mut d = AllocSnapshot::default();
        for i in 0..PHASES {
            d.fresh[i] = self.fresh[i].saturating_sub(earlier.fresh[i]);
            d.fresh_bytes[i] = self.fresh_bytes[i].saturating_sub(earlier.fresh_bytes[i]);
        }
        d.recycled = self.recycled.saturating_sub(earlier.recycled);
        d.reallocs = self.reallocs.saturating_sub(earlier.reallocs);
        d
    }
}

/// `true` when the counting allocator is registered (debug builds or
/// `--features strict`); `false` in plain release builds, where every
/// function here is a zero-cost stub.
pub fn armed() -> bool {
    cfg!(any(debug_assertions, feature = "strict"))
}

/// Scope guard restoring the previous phase on drop (see [`enter_phase`]).
#[derive(Debug)]
pub struct PhaseGuard {
    prev: u8,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if armed() {
            let _ = PHASE.try_with(|c| c.set(self.prev));
        }
    }
}

thread_local! {
    /// Current phase tag of this thread, read by the allocator on every
    /// fresh allocation. Const-initialized: reading it never allocates.
    static PHASE: Cell<u8> = const { Cell::new(0) };
}

/// Attribute this thread's allocations to `phase` until the returned
/// guard drops (nesting restores the outer phase). Free when disarmed.
pub fn enter_phase(phase: Phase) -> PhaseGuard {
    if !armed() {
        return PhaseGuard { prev: 0 };
    }
    let prev = PHASE
        .try_with(|c| {
            let prev = c.get();
            c.set(phase as u8);
            prev
        })
        .unwrap_or(0);
    PhaseGuard { prev }
}

/// Read the process-wide counters (all zero when disarmed).
pub fn snapshot() -> AllocSnapshot {
    armed_impl::snapshot()
}

/// Bytes currently parked on the recycling shelves (0 when disarmed).
pub fn shelved_bytes() -> usize {
    armed_impl::shelved_bytes()
}

/// A steady-state allocation gate: snapshots the counters at construction
/// and asserts that a warmed-up region performed **zero fresh system
/// allocations** — every request was served from the recycling shelves.
///
/// The dynamic proof behind lint rules R15–R17: after a warm-up pass has
/// stocked the shelves with every size class the window loop uses, a
/// further steady-state window must allocate nothing new.
#[derive(Debug)]
pub struct AllocGate {
    label: &'static str,
    start: AllocSnapshot,
}

impl AllocGate {
    /// Open a gate over a steady-state region (snapshot the counters now).
    pub fn steady_state(label: &'static str) -> AllocGate {
        AllocGate {
            label,
            start: snapshot(),
        }
    }

    /// Counter movement since the gate opened.
    pub fn delta(&self) -> AllocSnapshot {
        snapshot().since(&self.start)
    }

    /// Assert the gated region performed zero fresh system allocations
    /// (no-op when the allocator is disarmed).
    ///
    /// # Panics
    /// When armed and any allocation inside the gate missed the shelves,
    /// with the per-phase fresh counts in the message.
    pub fn assert_zero_fresh(&self) {
        if !armed() {
            return;
        }
        let d = self.delta();
        let fresh = d.fresh_total();
        assert!(
            fresh == 0,
            "alloc gate '{}': {fresh} fresh allocation(s) in steady state \
             ({} bytes; per-phase {:?}, recycled {})",
            self.label,
            d.fresh_bytes_total(),
            d.fresh,
            d.recycled,
        );
    }
}

#[cfg(any(debug_assertions, feature = "strict"))]
#[allow(unsafe_code)]
mod armed_impl {
    //! The armed allocator. All `unsafe` of `dema-core` lives here.

    use super::{AllocSnapshot, PHASE, PHASES};
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::{Cell, UnsafeCell};
    use std::ptr;
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

    /// Open-addressed shelf table size (each shelf claims one exact
    /// `(size, align)` class on first use). Sized far above the number of
    /// distinct classes a run produces so probing terminates fast.
    const SHELVES: usize = 4096;

    /// Linear-probe limit; a class that cannot claim a shelf within this
    /// many slots passes through to the system allocator uncounted as
    /// recycled (still counted fresh).
    const PROBE_LIMIT: usize = 32;

    /// Smallest block the intrusive free list can thread a next-pointer
    /// through (one unaligned `*mut u8`).
    const MIN_SHELVED: usize = core::mem::size_of::<*mut u8>();

    /// Global cap on bytes parked across all shelves; beyond it frees
    /// pass through to the system so idle processes cannot hoard memory.
    const SHELF_BYTE_BUDGET: usize = 1 << 27; // 128 MiB

    /// One size-class shelf: a spinlocked intrusive stack of freed blocks
    /// of exactly `(size, align)`. `size == 0` means unclaimed.
    struct Shelf {
        lock: AtomicBool,
        size: AtomicUsize,
        align: AtomicUsize,
        head: UnsafeCell<*mut u8>,
    }

    // SAFETY: `head` is only touched while `lock` is held (acquire/release
    // spinlock), so cross-thread access is serialized.
    unsafe impl Sync for Shelf {}

    impl Shelf {
        #[allow(clippy::declare_interior_mutable_const)] // static-array seed
        const EMPTY: Shelf = Shelf {
            lock: AtomicBool::new(false),
            size: AtomicUsize::new(0),
            align: AtomicUsize::new(0),
            head: UnsafeCell::new(ptr::null_mut()),
        };

        fn lock(&self) {
            while self
                .lock
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                std::hint::spin_loop();
            }
        }

        fn unlock(&self) {
            self.lock.store(false, Ordering::Release);
        }
    }

    static TABLE: [Shelf; SHELVES] = [Shelf::EMPTY; SHELVES];
    static SHELVED_BYTES: AtomicUsize = AtomicUsize::new(0);

    #[allow(clippy::declare_interior_mutable_const)] // static-array seed
    const ZERO: AtomicU64 = AtomicU64::new(0);
    static FRESH: [AtomicU64; PHASES] = [ZERO; PHASES];
    static FRESH_BYTES: [AtomicU64; PHASES] = [ZERO; PHASES];
    static RECYCLED: AtomicU64 = AtomicU64::new(0);
    static REALLOCS: AtomicU64 = AtomicU64::new(0);

    fn shelvable(layout: Layout) -> bool {
        layout.size() >= MIN_SHELVED
    }

    /// Widen sub-pointer-size requests to [`MIN_SHELVED`] bytes so the
    /// intrusive free-list pointer always fits and *every* class recycles.
    /// Sound because alloc and dealloc pad identically: the system
    /// allocator sees matching layouts, and a larger block satisfies the
    /// caller's smaller one.
    fn padded(layout: Layout) -> Layout {
        if layout.size() >= MIN_SHELVED {
            return layout;
        }
        Layout::from_size_align(MIN_SHELVED, layout.align()).unwrap_or(layout)
    }

    /// First probe slot of a `(size, align)` class.
    fn slot_of(layout: Layout) -> usize {
        let h = ((layout.size() as u64) ^ ((layout.align() as u64) << 33))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize % SHELVES
    }

    /// Pop a recycled block of exactly `layout`, if one is shelved.
    fn shelf_take(layout: Layout) -> Option<*mut u8> {
        if !shelvable(layout) {
            return None;
        }
        let start = slot_of(layout);
        for i in 0..PROBE_LIMIT {
            let shelf = &TABLE[(start + i) % SHELVES];
            shelf.lock();
            let (size, align) = (
                shelf.size.load(Ordering::Relaxed),
                shelf.align.load(Ordering::Relaxed),
            );
            if size == 0 {
                // First unclaimed slot on the probe path: the class was
                // never shelved (claims never move), so stop probing.
                shelf.unlock();
                return None;
            }
            if size == layout.size() && align == layout.align() {
                // SAFETY: `head` is ours while the spinlock is held; every
                // block on the list was handed to `dealloc` with exactly
                // this layout and stores its successor in its first bytes.
                let block = unsafe { *shelf.head.get() };
                let got = if block.is_null() {
                    None
                } else {
                    unsafe {
                        *shelf.head.get() = ptr::read_unaligned(block.cast::<*mut u8>());
                    }
                    SHELVED_BYTES.fetch_sub(size, Ordering::Relaxed);
                    Some(block)
                };
                shelf.unlock();
                return got;
            }
            shelf.unlock();
        }
        None
    }

    /// Park a freed block on its class shelf. `false` means the caller
    /// must free it through the system allocator.
    fn shelf_put(block: *mut u8, layout: Layout) -> bool {
        if !shelvable(layout) || SHELVED_BYTES.load(Ordering::Relaxed) >= SHELF_BYTE_BUDGET {
            return false;
        }
        let start = slot_of(layout);
        for i in 0..PROBE_LIMIT {
            let shelf = &TABLE[(start + i) % SHELVES];
            shelf.lock();
            let size = shelf.size.load(Ordering::Relaxed);
            if size == 0 {
                shelf.size.store(layout.size(), Ordering::Relaxed);
                shelf.align.store(layout.align(), Ordering::Relaxed);
            } else if size != layout.size() || shelf.align.load(Ordering::Relaxed) != layout.align()
            {
                shelf.unlock();
                continue;
            }
            // SAFETY: the block is freed memory of `layout.size() >= 8`
            // bytes owned by us from here on; threading the previous head
            // through its first bytes (unaligned store — `layout.align()`
            // may be 1) is the intrusive free list.
            unsafe {
                ptr::write_unaligned(block.cast::<*mut u8>(), *shelf.head.get());
                *shelf.head.get() = block;
            }
            SHELVED_BYTES.fetch_add(layout.size(), Ordering::Relaxed);
            shelf.unlock();
            return true;
        }
        false
    }

    /// Park a whole pre-linked chain on the class shelf under one lock
    /// (magazine spill / thread-exit flush). Chains that cannot claim a
    /// shelf within the probe limit or would bust the byte budget are
    /// released to the system allocator.
    fn shelf_put_chain(head: *mut u8, count: u32, layout: Layout) {
        if head.is_null() || count == 0 {
            return;
        }
        if SHELVED_BYTES.load(Ordering::Relaxed) < SHELF_BYTE_BUDGET {
            let mut last = head;
            for _ in 1..count {
                let next = unsafe { ptr::read_unaligned(last.cast::<*mut u8>()) };
                if next.is_null() {
                    break;
                }
                last = next;
            }
            let start = slot_of(layout);
            for i in 0..PROBE_LIMIT {
                let shelf = &TABLE[(start + i) % SHELVES];
                shelf.lock();
                let size = shelf.size.load(Ordering::Relaxed);
                if size == 0 {
                    shelf.size.store(layout.size(), Ordering::Relaxed);
                    shelf.align.store(layout.align(), Ordering::Relaxed);
                } else if size != layout.size()
                    || shelf.align.load(Ordering::Relaxed) != layout.align()
                {
                    shelf.unlock();
                    continue;
                }
                // SAFETY: the chain is freed memory owned by us; splicing
                // it in front of the shelf's stack is the same intrusive
                // threading `shelf_put` does, one lock for the whole chain.
                unsafe {
                    ptr::write_unaligned(last.cast::<*mut u8>(), *shelf.head.get());
                    *shelf.head.get() = head;
                }
                SHELVED_BYTES.fetch_add(layout.size() * count as usize, Ordering::Relaxed);
                shelf.unlock();
                return;
            }
        }
        // No shelf claimable (or over budget): release the chain.
        let mut p = head;
        for _ in 0..count {
            let next = unsafe { ptr::read_unaligned(p.cast::<*mut u8>()) };
            unsafe { System.dealloc(p, layout) };
            if next.is_null() {
                break;
            }
            p = next;
        }
    }

    // --- thread-local magazines -------------------------------------------
    //
    // A front cache in front of the shared shelves: each thread keeps a
    // small open-addressed table of per-class block stacks it pushes and
    // pops without atomics or locks, so the armed steady-state hit path
    // costs about what the system allocator's own thread cache does.
    //
    // A magazine only caches classes its thread also *allocates* (the
    // `hot` bit, set on take): a free of a class this thread never
    // allocates goes straight to the shared shelf, keeping cross-thread
    // producer/consumer flows (worker allocates, main frees at join)
    // globally visible — a cold-cached block would otherwise sit in the
    // wrong thread's magazine below the spill cap while the allocating
    // side went fresh, which the zero-alloc steady-state gate would see.

    /// Thread-local class-table size (open-addressed, claim-on-first-use,
    /// same "claims never move" discipline as the shared shelves).
    const MAG_SLOTS: usize = 256;

    /// Linear-probe limit inside a magazine; exhausted probes fall through
    /// to the shared shelves.
    const MAG_PROBE: usize = 8;

    /// Blocks a magazine class may stack before its older half spills to
    /// the shared shelf (keeps cross-thread flows supplied).
    const MAG_CAP: u32 = 32;

    /// Largest block a magazine caches. Bigger blocks go straight to the
    /// shared shelves: they are rare enough that the lock is noise next to
    /// the memory traffic they carry, and keeping them out bounds how many
    /// bytes a magazine can strand outside the shelf byte budget.
    const MAG_MAX_BLOCK: usize = 4096;

    #[derive(Clone, Copy)]
    struct MagClass {
        size: usize,
        align: usize,
        head: *mut u8,
        count: u32,
        /// This thread allocates this class (set on take): only hot
        /// classes may cache frees; cold frees go to the shared shelf.
        hot: bool,
    }

    struct Magazine {
        classes: UnsafeCell<[MagClass; MAG_SLOTS]>,
    }

    impl Magazine {
        const EMPTY_CLASS: MagClass = MagClass {
            size: 0,
            align: 0,
            head: ptr::null_mut(),
            count: 0,
            hot: false,
        };
    }

    impl Drop for Magazine {
        fn drop(&mut self) {
            // Thread exit: hand every cached stack back to the shared
            // shelves so the inventory survives the thread (short-lived
            // worker threads must not bleed shelf stock).
            for c in self.classes.get_mut().iter_mut() {
                if c.count == 0 {
                    continue;
                }
                if let Ok(layout) = Layout::from_size_align(c.size, c.align) {
                    shelf_put_chain(c.head, c.count, layout);
                }
                c.head = ptr::null_mut();
                c.count = 0;
            }
        }
    }

    thread_local! {
        /// Reentrancy latch: set while the magazine is in use, so any
        /// allocation the runtime performs while registering `MAG`'s
        /// destructor (first access) routes to the shared shelves instead
        /// of recursing into the magazine mid-initialization.
        static MAG_BUSY: Cell<bool> = const { Cell::new(false) };

        static MAG: Magazine = const {
            Magazine {
                classes: UnsafeCell::new([Magazine::EMPTY_CLASS; MAG_SLOTS]),
            }
        };
    }

    /// Run `f` with this thread's magazine table, or `None` when it is
    /// unavailable (busy latch set, or the thread is tearing down).
    fn with_magazine<R>(f: impl FnOnce(&mut [MagClass; MAG_SLOTS]) -> Option<R>) -> Option<R> {
        MAG_BUSY
            .try_with(|busy| {
                if busy.get() {
                    return None;
                }
                busy.set(true);
                // SAFETY: the table is thread-local and the busy latch
                // rules out a reentrant second borrow on this thread.
                let r = MAG
                    .try_with(|m| f(unsafe { &mut *m.classes.get() }))
                    .ok()
                    .flatten();
                busy.set(false);
                r
            })
            .ok()
            .flatten()
    }

    /// First matching-or-unclaimed slot of the class (claims never move,
    /// so the first unclaimed slot proves the class holds no later slot).
    fn mag_slot(classes: &[MagClass; MAG_SLOTS], layout: Layout) -> Option<usize> {
        let start = slot_of(layout) % MAG_SLOTS;
        for i in 0..MAG_PROBE {
            let idx = (start + i) % MAG_SLOTS;
            let c = &classes[idx];
            if c.size == 0 || (c.size == layout.size() && c.align == layout.align()) {
                return Some(idx);
            }
        }
        None
    }

    /// Pop a cached block from this thread's magazine. A take (hit or
    /// miss) marks the class hot: this thread allocates it, so its frees
    /// are worth caching here.
    fn magazine_take(layout: Layout) -> Option<*mut u8> {
        if layout.size() > MAG_MAX_BLOCK {
            return None;
        }
        with_magazine(|classes| {
            let idx = mag_slot(classes, layout)?;
            let c = &mut classes[idx];
            if c.size == 0 {
                c.size = layout.size();
                c.align = layout.align();
            }
            c.hot = true;
            if c.count == 0 {
                return None;
            }
            let block = c.head;
            // SAFETY: the block was threaded by `magazine_put` with this
            // exact layout; its first bytes hold the next pointer.
            c.head = unsafe { ptr::read_unaligned(block.cast::<*mut u8>()) };
            c.count -= 1;
            Some(block)
        })
    }

    /// Push a freed block onto this thread's magazine; `false` means the
    /// caller must park it on the shared shelves (or the system). Only
    /// classes this thread allocates are cached (see the module note on
    /// cross-thread flows).
    fn magazine_put(block: *mut u8, layout: Layout) -> bool {
        if !shelvable(layout) || layout.size() > MAG_MAX_BLOCK {
            return false;
        }
        with_magazine(|classes| {
            let idx = mag_slot(classes, layout)?;
            let c = &mut classes[idx];
            if !c.hot {
                return None;
            }
            // SAFETY: the block is freed memory of at least `MIN_SHELVED`
            // bytes (layouts are padded); threading the previous head
            // through its first bytes is the same intrusive list the
            // shelves use, minus the lock (thread-local).
            unsafe {
                ptr::write_unaligned(block.cast::<*mut u8>(), c.head);
            }
            c.head = block;
            c.count += 1;
            if c.count >= MAG_CAP {
                // Keep the newest (cache-hot) half, spill the rest so
                // cross-thread consumers find stock on the shared shelf.
                let keep = MAG_CAP / 2;
                let mut cursor = c.head;
                for _ in 1..keep {
                    // SAFETY: the stack holds `count >= keep` linked blocks.
                    cursor = unsafe { ptr::read_unaligned(cursor.cast::<*mut u8>()) };
                }
                // SAFETY: cut the chain after the `keep`-th block.
                let spill = unsafe { ptr::read_unaligned(cursor.cast::<*mut u8>()) };
                unsafe {
                    ptr::write_unaligned(cursor.cast::<*mut u8>(), ptr::null_mut());
                }
                let spilled = c.count - keep;
                c.count = keep;
                shelf_put_chain(spill, spilled, layout);
            }
            Some(())
        })
        .is_some()
    }

    fn note_fresh(layout: Layout) {
        let phase = PHASE.try_with(Cell::get).unwrap_or(0) as usize % PHASES;
        FRESH[phase].fetch_add(1, Ordering::Relaxed);
        FRESH_BYTES[phase].fetch_add(layout.size() as u64, Ordering::Relaxed);
    }

    /// The armed allocator: counts fresh system traffic and recycles
    /// freed blocks through the size-class shelves.
    struct CountingAlloc;

    // SAFETY: delegates to `System` for all real memory, and only hands
    // back recycled blocks whose `(size, align)` exactly matches the
    // requested layout (shelf claims are exact-layout by construction).
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let layout = padded(layout);
            if let Some(p) = magazine_take(layout).or_else(|| shelf_take(layout)) {
                RECYCLED.fetch_add(1, Ordering::Relaxed);
                return p;
            }
            note_fresh(layout);
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let layout = padded(layout);
            if let Some(p) = magazine_take(layout).or_else(|| shelf_take(layout)) {
                RECYCLED.fetch_add(1, Ordering::Relaxed);
                // Recycled blocks carry stale bytes (including the free-
                // list pointer): honor the zeroing contract explicitly.
                ptr::write_bytes(p, 0, layout.size());
                return p;
            }
            note_fresh(layout);
            System.alloc_zeroed(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            let layout = padded(layout);
            if magazine_put(ptr, layout) || shelf_put(ptr, layout) {
                return;
            }
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            REALLOCS.fetch_add(1, Ordering::Relaxed);
            // Route through our own alloc/dealloc so both the counters and
            // the shelves see the traffic (a realloc that merely returns a
            // shelved block of the new size is not fresh).
            let Ok(new_layout) = Layout::from_size_align(new_size, layout.align()) else {
                return ptr::null_mut();
            };
            let new_ptr = self.alloc(new_layout);
            if !new_ptr.is_null() {
                ptr::copy_nonoverlapping(ptr, new_ptr, layout.size().min(new_size));
                self.dealloc(ptr, layout);
            }
            new_ptr
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    pub(super) fn snapshot() -> AllocSnapshot {
        let mut s = AllocSnapshot::default();
        for i in 0..PHASES {
            s.fresh[i] = FRESH[i].load(Ordering::Relaxed);
            s.fresh_bytes[i] = FRESH_BYTES[i].load(Ordering::Relaxed);
        }
        s.recycled = RECYCLED.load(Ordering::Relaxed);
        s.reallocs = REALLOCS.load(Ordering::Relaxed);
        s
    }

    pub(super) fn shelved_bytes() -> usize {
        SHELVED_BYTES.load(Ordering::Relaxed)
    }
}

#[cfg(not(any(debug_assertions, feature = "strict")))]
mod armed_impl {
    //! Disarmed stubs: no global allocator is registered and every probe
    //! folds to a constant.

    use super::AllocSnapshot;

    pub(super) fn snapshot() -> AllocSnapshot {
        AllocSnapshot::default()
    }

    pub(super) fn shelved_bytes() -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_cover_all_indices() {
        let names: Vec<&str> = (0..PHASES).map(phase_name).collect();
        assert_eq!(
            names,
            vec!["other", "sort", "slice", "encode", "decode", "merge"]
        );
        assert_eq!(phase_name(99), "other");
    }

    #[test]
    fn snapshot_delta_is_saturating_and_componentwise() {
        let mut a = AllocSnapshot::default();
        let mut b = AllocSnapshot::default();
        a.fresh[1] = 10;
        a.fresh_bytes[1] = 640;
        a.recycled = 4;
        b.fresh[1] = 25;
        b.fresh_bytes[1] = 1000;
        b.recycled = 9;
        b.reallocs = 2;
        let d = b.since(&a);
        assert_eq!(d.fresh[1], 15);
        assert_eq!(d.fresh_bytes[1], 360);
        assert_eq!(d.recycled, 5);
        assert_eq!(d.reallocs, 2);
        assert_eq!(a.since(&b).fresh[1], 0, "saturates instead of wrapping");
    }

    #[test]
    fn armed_matches_build_configuration() {
        assert_eq!(armed(), cfg!(any(debug_assertions, feature = "strict")));
    }

    #[test]
    fn counters_move_when_armed() {
        if !armed() {
            return;
        }
        let before = snapshot();
        let v: Vec<u64> = (0..257).collect(); // odd size: surely not shelved yet? still counted
        drop(v);
        let after = snapshot();
        let d = after.since(&before);
        assert!(
            d.fresh_total() + d.recycled > 0,
            "an allocation must register as fresh or recycled"
        );
    }

    #[test]
    fn identical_layouts_recycle_after_warmup() {
        if !armed() {
            return;
        }
        // Warm the shelf with this exact size class.
        let warm: Vec<u64> = Vec::with_capacity(4093);
        drop(warm);
        let before = snapshot();
        for _ in 0..8 {
            let v: Vec<u64> = Vec::with_capacity(4093);
            drop(v);
        }
        let d = snapshot().since(&before);
        assert!(
            d.recycled >= 8,
            "8 identical alloc/free rounds must be shelf-served, got {d:?}"
        );
    }

    #[test]
    fn alloc_gate_is_clean_over_recycled_traffic() {
        // Warm up, then the same allocation pattern must be zero-fresh.
        let pattern = || {
            let mut v: Vec<u64> = Vec::with_capacity(509);
            v.extend(0..509);
            let b = vec![0u8; 777].into_boxed_slice();
            (v.iter().sum::<u64>(), b.len())
        };
        pattern();
        let gate = AllocGate::steady_state("alloc unit test");
        let (sum, len) = pattern();
        assert_eq!((sum, len), (129286, 777));
        gate.assert_zero_fresh();
    }

    #[test]
    fn phase_attribution_lands_in_the_scoped_bucket() {
        if !armed() {
            return;
        }
        let before = snapshot();
        {
            let _g = enter_phase(Phase::Merge);
            // A size class no other test uses, so the fresh alloc (first
            // time) or recycled hit is attributable.
            let v: Vec<u8> = Vec::with_capacity(31013);
            drop(v);
            let v: Vec<u8> = Vec::with_capacity(31013);
            drop(v);
        }
        let d = snapshot().since(&before);
        // Either the first alloc was fresh in the merge bucket, or the
        // whole pattern recycled (previous runs warmed it) — both prove
        // the plumbing without racing other test threads.
        assert!(
            d.fresh[Phase::Merge as usize] > 0 || d.recycled > 0,
            "scoped allocation must register: {d:?}"
        );
    }

    #[test]
    fn recycled_blocks_are_usable_and_zeroing_holds() {
        // Hammer one size class: contents must round-trip and zeroed
        // allocations must actually be zero (recycled blocks carry the
        // intrusive free-list pointer in their first bytes).
        for round in 0..64u8 {
            let mut v = vec![round; 1024];
            v[0] = round;
            assert!(v.iter().all(|&b| b == round));
            drop(v);
            let z = vec![0u8; 1024];
            assert!(z.iter().all(|&b| b == 0), "alloc_zeroed contract");
        }
    }

    #[test]
    fn concurrent_shelf_traffic_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..2000usize {
                        let n = 16 + ((i * 7 + t * 13) % 23) * 8;
                        let mut v = vec![0u8; n];
                        v[n - 1] = t as u8;
                        assert_eq!(v.len(), n);
                        let w = v.clone();
                        assert_eq!(w[n - 1], t as u8);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
