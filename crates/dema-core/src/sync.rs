//! Ranked synchronization primitives with a runtime lock-order tracker.
//!
//! Every lock in the Dema runtime carries a static [`Rank`]: a small
//! integer plus a human-readable site label. The discipline is the
//! classical one — a thread may only acquire a lock whose rank is
//! **strictly greater** than every rank it already holds. Any execution
//! that respects a total rank order cannot contain a lock-order cycle,
//! so the discipline rules out lock-inversion deadlocks by construction.
//!
//! Under `debug_assertions` or `--features strict`, a thread-local
//! acquisition tracker records the ranks currently held and reports
//! [`DemaError::LockOrderViolation`] (naming both site labels) the
//! moment an acquisition would break the order — *before* blocking, so
//! the violation is caught deterministically on every run rather than
//! only on the unlucky interleaving that actually deadlocks. In release
//! builds without `strict` the wrappers compile to zero-cost
//! passthroughs over `std::sync`.
//!
//! The static side of the same contract is `dema-lint`'s concurrency
//! pass (rules R10–R13, DESIGN.md §8): R13 forbids raw `std::sync` /
//! `parking_lot` locks in the hot-path crates so every lock is forced
//! through these wrappers, and R10 cross-checks the nesting the lexer
//! can see against the acquisition graph. The rank table lives in
//! [`rank`]; DESIGN.md §8 documents rank → lock → owning module.
//!
//! Poisoning is absorbed ([`std::sync::PoisonError::into_inner`])
//! exactly as the pre-wrapper code did: a panicking holder already
//! fails the run through other channels, and the protocol state these
//! locks protect is re-validated by the invariant layer downstream.

use crate::error::Result;
use std::fmt;
use std::sync::PoisonError;
use std::time::Duration;

/// Static rank carried by every [`Mutex`]/[`RwLock`] in the runtime.
///
/// `order` is the position in the global acquisition order (strictly
/// increasing along any nesting chain); `label` is the site name used
/// in diagnostics. The canonical ranks for the repo's lock universe
/// live in [`rank`]; tests and benches may mint their own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rank {
    order: u16,
    label: &'static str,
}

impl Rank {
    /// Create a rank with the given acquisition order and site label.
    pub const fn new(order: u16, label: &'static str) -> Self {
        Rank { order, label }
    }

    /// Position in the global acquisition order.
    pub const fn order(&self) -> u16 {
        self.order
    }

    /// Human-readable site label used in diagnostics.
    pub const fn label(&self) -> &'static str {
        self.label
    }

    fn describe(&self) -> String {
        format!("{}(rank {})", self.label, self.order)
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(rank {})", self.label, self.order)
    }
}

/// The canonical rank table (DESIGN.md §8, "lock ranking").
///
/// Orders are spaced by 2 so a future lock can slot between neighbours
/// without renumbering. The only *required* orderings — nestings that
/// actually occur at runtime — are `ROUTED_DOWNLINK` before
/// `NET_THROTTLE` / `NET_STEP_QUEUE` / `WIRE_BUF_POOL`: a
/// `RoutedSender` holds its downlink lock across the wrapped
/// transport's `send`, which may take the throttle gate, the in-memory
/// step queue, or the wire buffer pool. Every other lock is a leaf
/// (its guard is always dropped before any other lock is touched).
pub mod rank {
    use super::Rank;

    /// Sort-pool job queue (`dema_core::par`), waited on via condvar.
    pub const PAR_QUEUE: Rank = Rank::new(10, "par.queue");
    /// Sort-pool per-call result slots (`dema_core::par`).
    pub const PAR_RESULTS: Rank = Rank::new(12, "par.results");
    /// Shared routed downlink (`dema-cluster::relay`); held across the
    /// wrapped transport send, hence ranked below every transport lock.
    pub const ROUTED_DOWNLINK: Rank = Rank::new(20, "relay.downlink");
    /// Bandwidth-throttle gate (`dema-net::mem`).
    pub const NET_THROTTLE: Rank = Rank::new(30, "net.throttle");
    /// Single-stepped in-memory link queue (`dema-net::step`).
    pub const NET_STEP_QUEUE: Rank = Rank::new(32, "net.step_queue");
    /// Wire buffer pool spares (`dema-wire::pool`).
    pub const WIRE_BUF_POOL: Rank = Rank::new(40, "wire.buf_pool");
    /// Local engine slice store (`dema-cluster::engines::dema`).
    pub const LOCAL_STORE: Rank = Rank::new(50, "local.store");
    /// Local engine sent-message cache (`dema-cluster::engines::dema`).
    pub const LOCAL_SENT: Rank = Rank::new(52, "local.sent");
    /// Root-side window close-time map (`dema-cluster::local`).
    pub const CLOSE_TIMES: Rank = Rank::new(54, "cluster.close_times");
}

#[cfg(any(debug_assertions, feature = "strict"))]
mod tracker {
    use super::Rank;
    use crate::error::{DemaError, Result};
    use std::cell::RefCell;

    thread_local! {
        /// Ranks currently held by this thread, in acquisition order.
        /// Strictly increasing by construction: every push is checked
        /// against the current maximum, and dropping a middle guard
        /// preserves the order of the rest.
        static HELD: RefCell<Vec<Rank>> = const { RefCell::new(Vec::new()) };
    }

    /// Proof of a tracked acquisition; pops its rank on drop.
    pub(super) struct Token {
        order: u16,
    }

    pub(super) fn acquire(rank: Rank) -> Result<Token> {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(blocker) = held.iter().rev().find(|r| r.order() >= rank.order()) {
                return Err(DemaError::LockOrderViolation {
                    held: blocker.describe(),
                    acquiring: rank.describe(),
                });
            }
            held.push(rank);
            Ok(Token {
                order: rank.order(),
            })
        })
    }

    impl Drop for Token {
        fn drop(&mut self) {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().rposition(|r| r.order() == self.order) {
                    held.remove(pos);
                }
            });
        }
    }
}

#[cfg(not(any(debug_assertions, feature = "strict")))]
mod tracker {
    use super::Rank;
    use crate::error::Result;

    /// Zero-sized stand-in: release builds skip the tracker entirely.
    pub(super) struct Token;

    #[inline(always)]
    pub(super) fn acquire(_rank: Rank) -> Result<Token> {
        Ok(Token)
    }
}

/// Acquire a tracker token for `rank`, failing fast on inversion.
///
/// The panic is deliberate: a lock-order inversion is a programming
/// error in the runtime itself (never input-dependent), and the checked
/// builds exist precisely to surface it at the first occurrence.
/// Callers that want the error as a value use the `*_checked` methods.
fn grant(rank: Rank) -> tracker::Token {
    match tracker::acquire(rank) {
        Ok(token) => token,
        // lint: allow(R1): inversions are runtime bugs; checked builds fail fast at the site
        Err(e) => panic!("{e}"),
    }
}

/// A mutex carrying a static [`Rank`], checked by the thread-local
/// lock-order tracker in debug/strict builds.
pub struct Mutex<T> {
    rank: Rank,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a ranked mutex around `value`.
    pub const fn new(rank: Rank, value: T) -> Self {
        Mutex {
            rank,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// This lock's static rank.
    pub const fn rank(&self) -> Rank {
        self.rank
    }

    /// Acquire the lock, panicking on a rank inversion in checked
    /// builds. Poisoning is absorbed.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let token = grant(self.rank);
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            rank: self.rank,
            _token: token,
        }
    }

    /// Acquire the lock, returning [`DemaError::LockOrderViolation`]
    /// instead of panicking when the tracker rejects the acquisition
    /// (always `Ok` in unchecked release builds).
    pub fn lock_checked(&self) -> Result<MutexGuard<'_, T>> {
        let token = tracker::acquire(self.rank)?;
        Ok(MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            rank: self.rank,
            _token: token,
        })
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex")
            .field("rank", &self.rank)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Guard returned by [`Mutex::lock`]; releases the tracker rank when
/// dropped.
pub struct MutexGuard<'a, T> {
    inner: std::sync::MutexGuard<'a, T>,
    rank: Rank,
    _token: tracker::Token,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock carrying a static [`Rank`]. Read and write
/// acquisitions participate in the rank order identically: a recursive
/// read of the same lock is flagged too, since it can deadlock against
/// a writer queued between the two reads.
pub struct RwLock<T> {
    rank: Rank,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a ranked reader-writer lock around `value`.
    pub const fn new(rank: Rank, value: T) -> Self {
        RwLock {
            rank,
            inner: std::sync::RwLock::new(value),
        }
    }

    /// This lock's static rank.
    pub const fn rank(&self) -> Rank {
        self.rank
    }

    /// Acquire a shared read guard, panicking on rank inversion in
    /// checked builds. Poisoning is absorbed.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let token = grant(self.rank);
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
            _token: token,
        }
    }

    /// Acquire an exclusive write guard, panicking on rank inversion in
    /// checked builds. Poisoning is absorbed.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let token = grant(self.rank);
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
            _token: token,
        }
    }

    /// Like [`RwLock::read`] but returning the violation as a value.
    pub fn read_checked(&self) -> Result<RwLockReadGuard<'_, T>> {
        let token = tracker::acquire(self.rank)?;
        Ok(RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
            _token: token,
        })
    }

    /// Like [`RwLock::write`] but returning the violation as a value.
    pub fn write_checked(&self) -> Result<RwLockWriteGuard<'_, T>> {
        let token = tracker::acquire(self.rank)?;
        Ok(RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
            _token: token,
        })
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("rank", &self.rank)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    _token: tracker::Token,
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    _token: tracker::Token,
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable paired with a ranked [`Mutex`].
///
/// While a thread is blocked in [`Condvar::wait`] the mutex is
/// *released*, so the tracker pops its rank for the duration of the
/// wait and re-acquires it (re-checked) when the wait returns. Waiting
/// on a condvar is therefore *not* "holding a lock across a blocking
/// call" — it is the one sanctioned block-while-locked primitive, and
/// lint rule R11 deliberately does not treat `wait` as a needle.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release `guard` and block until notified, then
    /// re-acquire the mutex (and its tracker rank). Poisoning absorbed.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let MutexGuard {
            inner,
            rank,
            _token,
        } = guard;
        drop(_token); // the mutex is released for the duration of the wait
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            inner,
            rank,
            _token: grant(rank),
        }
    }

    /// [`Condvar::wait`] with a timeout; the boolean reports whether the
    /// wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let MutexGuard {
            inner,
            rank,
            _token,
        } = guard;
        drop(_token);
        let (inner, timeout) = self
            .inner
            .wait_timeout(inner, dur)
            .unwrap_or_else(PoisonError::into_inner);
        (
            MutexGuard {
                inner,
                rank,
                _token: grant(rank),
            },
            timeout.timed_out(),
        )
    }

    /// Wake one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every blocked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[allow(unused_imports)] // only matched under debug/strict cfg
    use crate::error::DemaError;

    const LOW: Rank = Rank::new(100, "test.low");
    const HIGH: Rank = Rank::new(200, "test.high");

    #[test]
    fn ordered_nesting_is_accepted() {
        let a = Mutex::new(LOW, 1u32);
        let b = Mutex::new(HIGH, 2u32);
        let ga = a.lock();
        let gb = b.lock();
        assert_eq!(*ga + *gb, 3);
    }

    /// The intentionally-inverted-rank self-test: acquiring a lower
    /// rank while a higher one is held must be reported, with both
    /// site labels in the error.
    #[test]
    #[cfg(any(debug_assertions, feature = "strict"))]
    fn inverted_nesting_is_reported_with_both_sites() {
        let a = Mutex::new(LOW, ());
        let b = Mutex::new(HIGH, ());
        let _gb = b.lock();
        let err = a.lock_checked().err().expect("inversion must be rejected");
        match err {
            DemaError::LockOrderViolation { held, acquiring } => {
                assert_eq!(held, "test.high(rank 200)");
                assert_eq!(acquiring, "test.low(rank 100)");
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    #[cfg(any(debug_assertions, feature = "strict"))]
    fn equal_rank_reacquisition_is_reported() {
        let a = Mutex::new(LOW, ());
        let b = Mutex::new(Rank::new(100, "test.low2"), ());
        let _ga = a.lock();
        assert!(b.lock_checked().is_err(), "equal ranks must not nest");
    }

    #[test]
    #[cfg(any(debug_assertions, feature = "strict"))]
    fn panicking_lock_names_the_inversion() {
        let outcome = std::panic::catch_unwind(|| {
            let a = Mutex::new(LOW, ());
            let b = Mutex::new(HIGH, ());
            let _gb = b.lock();
            let _ga = a.lock(); // fires
        });
        let payload = outcome.err().expect("lock() must panic on inversion");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("lock-order violation")
                && msg.contains("test.low(rank 100)")
                && msg.contains("test.high(rank 200)"),
            "panic message must name both sites: {msg}"
        );
    }

    #[test]
    fn dropping_a_guard_releases_its_rank() {
        let a = Mutex::new(LOW, ());
        let b = Mutex::new(HIGH, ());
        {
            let _gb = b.lock();
        }
        // HIGH released: LOW is acquirable again, then HIGH on top.
        let _ga = a.lock();
        let _gb = b.lock();
    }

    #[test]
    fn out_of_order_guard_drops_keep_tracker_consistent() {
        let a = Mutex::new(LOW, ());
        let b = Mutex::new(Rank::new(150, "test.mid"), ());
        let c = Mutex::new(HIGH, ());
        let ga = a.lock();
        let gb = b.lock();
        let gc = c.lock();
        drop(gb); // middle guard first
        drop(ga);
        drop(gc);
        // Everything released; full chain acquirable again.
        let _ga = a.lock();
        let _gc = c.lock();
    }

    #[test]
    fn rwlock_participates_in_the_rank_order() {
        let data = RwLock::new(LOW, vec![1, 2, 3]);
        {
            let r = data.read();
            assert_eq!(r.len(), 3);
        }
        {
            let mut w = data.write();
            w.push(4);
        }
        assert_eq!(data.read_checked().map(|g| g.len()), Ok(4));
        assert_eq!(data.write_checked().map(|g| g.len()), Ok(4));
    }

    #[test]
    #[cfg(any(debug_assertions, feature = "strict"))]
    fn rwlock_read_under_higher_rank_is_reported() {
        let data = RwLock::new(LOW, 0u8);
        let top = Mutex::new(HIGH, ());
        let _gt = top.lock();
        assert!(data.read_checked().is_err());
        assert!(data.write_checked().is_err());
    }

    #[test]
    fn condvar_wait_releases_and_reacquires_the_rank() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(HIGH, false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                ready = cvar.wait(ready);
            }
            *ready
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        assert!(handle.join().ok() == Some(true));
    }

    #[test]
    fn condvar_wait_timeout_reports_expiry() {
        let lock = Mutex::new(HIGH, ());
        let cvar = Condvar::new();
        let guard = lock.lock();
        let (_guard, timed_out) = cvar.wait_timeout(guard, Duration::from_millis(1));
        assert!(timed_out);
    }

    #[test]
    fn tracker_is_per_thread() {
        use std::sync::Arc;
        let a = Arc::new(Mutex::new(HIGH, ()));
        let _ga = a.lock();
        let a2 = Arc::clone(&a);
        // Another thread holds nothing: acquiring LOW-ranked locks there
        // is fine even while this thread sits on HIGH.
        let handle = std::thread::spawn(move || {
            let b = Mutex::new(LOW, ());
            let _gb = b.lock();
            drop(_gb);
            drop(a2);
            true
        });
        assert!(handle.join().ok() == Some(true));
    }

    #[test]
    fn ranks_expose_order_and_label() {
        assert_eq!(rank::PAR_QUEUE.order(), 10);
        assert_eq!(rank::PAR_QUEUE.label(), "par.queue");
        assert!(rank::ROUTED_DOWNLINK.order() < rank::NET_THROTTLE.order());
        assert!(rank::ROUTED_DOWNLINK.order() < rank::NET_STEP_QUEUE.order());
        assert!(rank::ROUTED_DOWNLINK.order() < rank::WIRE_BUF_POOL.order());
        assert_eq!(
            format!("{}", rank::CLOSE_TIMES),
            "cluster.close_times(rank 54)"
        );
    }
}
