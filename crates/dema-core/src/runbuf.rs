//! Run-based incremental sorting for local windows.
//!
//! The paper's local nodes "incrementally sort arriving events into
//! windows". A naive sorted-`Vec` insert is `O(n)` per event in the worst
//! case; sorting once at window close is `O(n log n)` but does all the work
//! inside the latency-critical close path. [`RunBuffer`] is the middle
//! ground used by real sorters (timsort, external merge sort): exploit the
//! *monotone runs* that sensor streams naturally produce.
//!
//! * Appending an event extends the current run while the stream stays
//!   ascending (`O(1)` — the common case for smooth sensor values);
//! * a descending step seals the run and starts a new one;
//! * closing the window k-way merges the runs (`O(n log r)` for `r` runs).
//!
//! For a perfectly sorted stream this is `O(n)`; for random input it decays
//! to ~`n/2` runs and behaves like a merge sort. The ablation bench
//! (`local_window_sort`) compares all three strategies.

use crate::event::Event;

/// An incrementally sorted event buffer based on monotone runs.
#[derive(Debug, Clone, Default)]
pub struct RunBuffer {
    /// Sealed ascending runs.
    runs: Vec<Vec<Event>>,
    /// The run currently being extended (always ascending).
    current: Vec<Event>,
    len: usize,
}

impl RunBuffer {
    /// An empty buffer.
    pub fn new() -> RunBuffer {
        RunBuffer::default()
    }

    /// Number of buffered events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if nothing has been pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of runs currently held (diagnostic; the merge cost driver).
    pub fn run_count(&self) -> usize {
        self.runs.len() + usize::from(!self.current.is_empty())
    }

    /// Append one event.
    #[inline]
    pub fn push(&mut self, event: Event) {
        if let Some(last) = self.current.last() {
            if *last > event {
                // Descending step: seal the run. Keep runs bounded: once we
                // accumulate many small runs, merge the smallest pair so the
                // final merge stays shallow.
                let sealed = std::mem::take(&mut self.current);
                self.runs.push(sealed);
                if self.runs.len() >= 32 {
                    self.compact();
                }
            }
        }
        self.current.push(event);
        self.len += 1;
    }

    /// Merge the two smallest runs (keeps run count bounded without
    /// rewriting large runs repeatedly — a simplified polyphase policy).
    fn compact(&mut self) {
        self.runs.sort_by_key(|r| std::cmp::Reverse(r.len()));
        if let (Some(a), Some(b)) = (self.runs.pop(), self.runs.pop()) {
            self.runs.push(merge_two(a, b));
        }
    }

    /// Consume the buffer, returning all events fully sorted.
    pub fn into_sorted(mut self) -> Vec<Event> {
        if !self.current.is_empty() {
            self.runs.push(std::mem::take(&mut self.current));
        }
        // Repeatedly merge smallest-first for balanced work.
        while self.runs.len() > 1 {
            self.runs.sort_by_key(|r| std::cmp::Reverse(r.len()));
            let (Some(a), Some(b)) = (self.runs.pop(), self.runs.pop()) else {
                break;
            };
            self.runs.push(merge_two(a, b));
        }
        self.runs.pop().unwrap_or_default()
    }
}

/// Merge two ascending runs.
fn merge_two(a: Vec<Event>, b: Vec<Event>) -> Vec<Event> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (0, 0);
    while ia < a.len() && ib < b.len() {
        if a[ia] <= b[ib] {
            out.push(a[ia]);
            ia += 1;
        } else {
            out.push(b[ib]);
            ib += 1;
        }
    }
    out.extend_from_slice(&a[ia..]);
    out.extend_from_slice(&b[ib..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(v: i64, id: u64) -> Event {
        Event::new(v, 0, id)
    }

    #[test]
    fn empty_buffer() {
        let b = RunBuffer::new();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.run_count(), 0);
        assert!(b.into_sorted().is_empty());
    }

    #[test]
    fn ascending_stream_is_one_run() {
        let mut b = RunBuffer::new();
        for i in 0..1000 {
            b.push(ev(i, i as u64));
        }
        assert_eq!(b.run_count(), 1);
        let sorted = b.into_sorted();
        assert!(crate::event::is_sorted(&sorted));
        assert_eq!(sorted.len(), 1000);
    }

    #[test]
    fn descending_stream_produces_many_runs_but_sorts() {
        let mut b = RunBuffer::new();
        for i in (0..1000).rev() {
            b.push(ev(i, i as u64));
        }
        let sorted = b.into_sorted();
        assert!(crate::event::is_sorted(&sorted));
        assert_eq!(sorted.first().unwrap().value, 0);
        assert_eq!(sorted.last().unwrap().value, 999);
    }

    #[test]
    fn sawtooth_matches_std_sort() {
        let mut b = RunBuffer::new();
        let mut expected = Vec::new();
        for i in 0..5000i64 {
            let v = (i * 37) % 1000 - (i % 7) * 50;
            let e = Event::new(v, i as u64, i as u64);
            b.push(e);
            expected.push(e);
        }
        expected.sort_unstable();
        assert_eq!(b.into_sorted(), expected);
    }

    #[test]
    fn duplicates_keep_total_order() {
        let mut b = RunBuffer::new();
        for i in 0..100 {
            b.push(Event::new(5, 0, i));
        }
        let sorted = b.into_sorted();
        let ids: Vec<u64> = sorted.iter().map(|e| e.id).collect();
        assert_eq!(ids, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn run_count_is_bounded_by_compaction() {
        let mut b = RunBuffer::new();
        // Worst case: strictly descending → every push seals a run.
        for i in (0..10_000).rev() {
            b.push(ev(i, i as u64));
        }
        assert!(b.run_count() <= 33, "{} runs retained", b.run_count());
        assert!(crate::event::is_sorted(&b.into_sorted()));
    }

    #[test]
    fn merge_two_is_correct() {
        let a = vec![ev(1, 0), ev(3, 0), ev(5, 0)];
        let b = vec![ev(2, 1), ev(4, 1)];
        let merged = merge_two(a, b);
        let vals: Vec<i64> = merged.iter().map(|e| e.value).collect();
        assert_eq!(vals, vec![1, 2, 3, 4, 5]);
        assert_eq!(merge_two(vec![], vec![]).len(), 0);
    }
}
