//! Checked numeric conversions for rank and cost arithmetic.
//!
//! Rank arithmetic (`Pos(q) = ⌈q·l_G⌉`), the cost model
//! `Cost(γ) = 2·l_G/γ + m·(γ−2)` and the merge counters all move values
//! between `usize`, `u64`, `u32` and `f64`. A stray `value as u64` in that
//! path can silently truncate or wrap and turn an *exact* quantile into a
//! wrong one, which is exactly the failure mode the paper's guarantee rules
//! out. This module is the single place such conversions are allowed: every
//! helper either cannot lose information, or saturates with documented
//! semantics. The `dema-lint` R2 rule rejects raw `as` numeric casts in the
//! rank/gamma/merge files; the two unavoidable float casts live here behind
//! `// lint: allow(R2)` tags.
//!
//! Saturation (rather than erroring) is the right policy for the cost model:
//! `l_G` beyond 2^53 loses float precision no matter what, and a saturated
//! γ candidate is still clamped into `[2, l_G]` by the caller — the result
//! stays a *valid* γ, merely a possibly suboptimal one, which never affects
//! exactness of the quantile itself.

/// Widen a window size or count to `f64` for the cost model.
///
/// Lossless up to 2^53; above that the nearest representable float is used,
/// which only perturbs the γ *optimum*, never the quantile result.
#[inline]
#[must_use]
pub fn u64_to_f64(x: u64) -> f64 {
    x as f64 // lint: allow(R2): widening for the cost model, rounds above 2^53 by design
}

/// Convert a non-negative cost-model float back to a count, saturating.
///
/// `NaN` and negatives map to 0, values at or above 2^64 map to
/// `u64::MAX` (guaranteed `as`-cast semantics since Rust 1.45). Callers
/// clamp the result into `[2, l_G]`, so saturation cannot produce an
/// invalid γ.
#[inline]
#[must_use]
pub fn f64_to_u64(x: f64) -> u64 {
    x as u64 // lint: allow(R2): saturating float-to-int is the documented policy
}

/// Widen an event value to `f64` for sketch-based engines.
///
/// Lossless for |x| ≤ 2^53; beyond that the nearest representable float is
/// used, which only perturbs an *approximate* engine's estimate — the exact
/// engines never round-trip values through floats.
#[inline]
#[must_use]
pub fn i64_to_f64(x: i64) -> f64 {
    x as f64 // lint: allow(R2): widening for approximate sketches, rounds above 2^53 by design
}

/// Convert a sketch estimate back to the event value domain, saturating.
///
/// `NaN` maps to 0; values outside `i64`'s range clamp to the nearest bound
/// (guaranteed `as`-cast semantics since Rust 1.45). Only approximate
/// engines use this — their answers carry rank error anyway, so saturation
/// at the extremes of the domain is benign.
#[inline]
#[must_use]
pub fn f64_to_i64(x: f64) -> i64 {
    x as i64 // lint: allow(R2): saturating float-to-int is the documented policy
}

/// Widen a collection length to the wire's `u64` count domain.
///
/// Infallible on every supported platform (`usize` ≤ 64 bits); written as
/// `try_from` so no `as` cast appears in rank arithmetic.
#[inline]
#[must_use]
pub fn len_to_u64(x: usize) -> u64 {
    u64::try_from(x).unwrap_or(u64::MAX)
}

/// Narrow a wire count to an in-memory index, saturating on 32-bit hosts.
///
/// On 64-bit platforms this is lossless. A saturated index makes the caller
/// fall off the end of its collection and surface a `DemaError` rather than
/// wrap around to a *wrong but plausible* index.
#[inline]
#[must_use]
pub fn u64_to_usize(x: u64) -> usize {
    usize::try_from(x).unwrap_or(usize::MAX)
}

/// Narrow a slice count to the synopsis' `u32` index domain, saturating.
///
/// `cut_into_slices` enforces γ ≥ 2, so a window would need more than
/// 2^33 events for a node to exceed `u32::MAX` slices; saturation keeps the
/// conversion total and is caught by the partition invariant if it ever
/// happens.
#[inline]
#[must_use]
pub fn len_to_u32(x: usize) -> u32 {
    u32::try_from(x).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_to_f64_exact_below_2_53() {
        assert_eq!(u64_to_f64(0), 0.0);
        assert_eq!(u64_to_f64(1 << 52), 4_503_599_627_370_496.0);
        let exact = (1u64 << 53) - 1;
        assert_eq!(u64_to_f64(exact) as u128, exact as u128);
    }

    #[test]
    fn f64_to_u64_saturates() {
        assert_eq!(f64_to_u64(-1.5), 0);
        assert_eq!(f64_to_u64(f64::NAN), 0);
        assert_eq!(f64_to_u64(f64::INFINITY), u64::MAX);
        assert_eq!(f64_to_u64(2.0f64.powi(64)), u64::MAX);
        assert_eq!(f64_to_u64(42.9), 42);
    }

    #[test]
    fn i64_f64_roundtrip_and_saturation() {
        assert_eq!(i64_to_f64(-42), -42.0);
        assert_eq!(f64_to_i64(i64_to_f64(1 << 52)), 1 << 52);
        assert_eq!(f64_to_i64(f64::NAN), 0);
        assert_eq!(f64_to_i64(1e30), i64::MAX);
        assert_eq!(f64_to_i64(-1e30), i64::MIN);
        assert_eq!(f64_to_i64(42.9), 42);
    }

    #[test]
    fn len_conversions_roundtrip_for_realistic_sizes() {
        for n in [0usize, 1, 1024, 1 << 20] {
            assert_eq!(u64_to_usize(len_to_u64(n)), n);
        }
        assert_eq!(len_to_u32(7), 7);
        assert_eq!(len_to_u32(usize::MAX), u32::MAX);
    }

    #[test]
    fn u64_to_usize_saturates_instead_of_wrapping() {
        // Identity on 64-bit hosts, saturation on narrower ones — either
        // way the result is usize::MAX, never a wrapped small number.
        assert_eq!(u64_to_usize(u64::MAX), usize::MAX);
    }
}
