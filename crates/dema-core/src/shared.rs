//! Reference-counted sorted event runs.
//!
//! The hot path of the protocol moves the *same* sorted events through
//! several owners: the local store keeps a window's slices until the root
//! requests candidates, the responder packages some of them into a reply,
//! and the root merges the delivered runs. Holding each of these as an owned
//! `Vec<Event>` forces a deep copy at every hand-off even though the events
//! are immutable once sorted.
//!
//! [`SharedRun`] replaces those copies with a view into one shared,
//! immutable buffer: an `Arc<[Event]>` plus a sub-range. Cloning bumps a
//! refcount; slicing a window into γ-sized slices produces views over a
//! single allocation. `Deref<Target = [Event]>` keeps every read-only call
//! site (`len`, `first`, `iter`, indexing) source-compatible with the old
//! `Vec<Event>` representation.

use std::ops::{Deref, Range};
use std::sync::Arc;

use crate::event::Event;

/// An immutable, cheaply clonable view into a shared run of sorted events.
///
/// Equality and ordering compare *contents*, not identity; use
/// [`SharedRun::ptr_eq`] to check whether two runs share a backing buffer.
#[derive(Clone)]
pub struct SharedRun {
    buf: Arc<[Event]>,
    start: usize,
    end: usize,
}

impl SharedRun {
    /// An empty run (no allocation is shared).
    pub fn empty() -> SharedRun {
        SharedRun {
            buf: Arc::from(Vec::new()),
            start: 0,
            end: 0,
        }
    }

    /// Wrap an owned buffer. The `Vec` is moved into the shared allocation
    /// without copying individual events beyond the one-time `Arc` setup.
    pub fn from_vec(events: Vec<Event>) -> SharedRun {
        let end = events.len();
        SharedRun {
            buf: Arc::from(events),
            start: 0,
            end,
        }
    }

    /// A view of `range` within the same backing buffer as `self`.
    ///
    /// # Panics
    /// Panics if `range` is out of bounds or reversed.
    pub fn slice(&self, range: Range<usize>) -> SharedRun {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        SharedRun {
            buf: Arc::clone(&self.buf),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// `true` if `a` and `b` are views into the same backing allocation.
    ///
    /// This is the zero-copy witness: a run that travelled store → responder
    /// → reply without copying still `ptr_eq`s the stored slice.
    pub fn ptr_eq(a: &SharedRun, b: &SharedRun) -> bool {
        Arc::ptr_eq(&a.buf, &b.buf)
    }

    /// Copy the viewed events into a fresh owned `Vec`.
    pub fn to_vec(&self) -> Vec<Event> {
        self.as_slice().to_vec()
    }

    /// The viewed events.
    #[inline]
    pub fn as_slice(&self) -> &[Event] {
        &self.buf[self.start..self.end]
    }
}

impl Deref for SharedRun {
    type Target = [Event];

    #[inline]
    fn deref(&self) -> &[Event] {
        self.as_slice()
    }
}

impl AsRef<[Event]> for SharedRun {
    #[inline]
    fn as_ref(&self) -> &[Event] {
        self.as_slice()
    }
}

impl From<Vec<Event>> for SharedRun {
    fn from(events: Vec<Event>) -> SharedRun {
        SharedRun::from_vec(events)
    }
}

impl FromIterator<Event> for SharedRun {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> SharedRun {
        SharedRun::from_vec(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a SharedRun {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl PartialEq for SharedRun {
    fn eq(&self, other: &SharedRun) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SharedRun {}

impl PartialEq<Vec<Event>> for SharedRun {
    fn eq(&self, other: &Vec<Event>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[Event]> for SharedRun {
    fn eq(&self, other: &[Event]) -> bool {
        self.as_slice() == other
    }
}

impl std::fmt::Debug for SharedRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl Default for SharedRun {
    fn default() -> SharedRun {
        SharedRun::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(v: i64) -> Event {
        Event::new(v, 0, v as u64)
    }

    fn events(n: i64) -> Vec<Event> {
        (0..n).map(ev).collect()
    }

    #[test]
    fn deref_exposes_slice_api() {
        let run = SharedRun::from_vec(events(5));
        assert_eq!(run.len(), 5);
        assert_eq!(run.first().unwrap().value, 0);
        assert_eq!(run.last().unwrap().value, 4);
        assert_eq!(run[2].value, 2);
        let vals: Vec<i64> = run.iter().map(|e| e.value).collect();
        assert_eq!(vals, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn clone_shares_backing_buffer() {
        let run = SharedRun::from_vec(events(100));
        let copy = run.clone();
        assert!(SharedRun::ptr_eq(&run, &copy));
        assert_eq!(run, copy);
    }

    #[test]
    fn slicing_shares_backing_buffer() {
        let run = SharedRun::from_vec(events(10));
        let a = run.slice(0..4);
        let b = run.slice(4..10);
        assert!(SharedRun::ptr_eq(&run, &a));
        assert!(SharedRun::ptr_eq(&a, &b));
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 6);
        assert_eq!(a.last().unwrap().value, 3);
        assert_eq!(b.first().unwrap().value, 4);
    }

    #[test]
    fn sub_slice_of_slice_stays_anchored() {
        let run = SharedRun::from_vec(events(10));
        let mid = run.slice(2..8);
        let inner = mid.slice(1..3);
        assert!(SharedRun::ptr_eq(&run, &inner));
        let vals: Vec<i64> = inner.iter().map(|e| e.value).collect();
        assert_eq!(vals, vec![3, 4]);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn out_of_bounds_slice_panics() {
        let run = SharedRun::from_vec(events(3));
        let _ = run.slice(1..5);
    }

    #[test]
    fn equality_is_by_contents_not_identity() {
        let a = SharedRun::from_vec(events(5));
        let b = SharedRun::from_vec(events(5));
        assert_eq!(a, b);
        assert!(!SharedRun::ptr_eq(&a, &b));
        assert_eq!(a, events(5)); // Vec comparison
    }

    #[test]
    fn empty_run() {
        let run = SharedRun::empty();
        assert!(run.is_empty());
        assert_eq!(run, SharedRun::default());
        assert!(run.to_vec().is_empty());
    }

    #[test]
    fn for_loop_over_reference() {
        let run = SharedRun::from_vec(events(3));
        let mut sum = 0;
        for e in &run {
            sum += e.value;
        }
        assert_eq!(sum, 3);
    }
}
