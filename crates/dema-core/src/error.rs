//! Error types shared across the Dema core.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DemaError>;

/// Errors produced by the core algorithm.
///
/// The core is deliberately strict: malformed inputs (an empty window where a
/// quantile is requested, a `γ < 2`, synopses that disagree about the window
/// they describe) are surfaced as errors instead of being papered over,
/// because in a decentralized deployment they indicate protocol bugs or data
/// loss that would otherwise silently corrupt results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DemaError {
    /// A quantile was requested over a window that contains no events.
    EmptyWindow,
    /// Quantile fraction outside the half-open interval `(0, 1]`.
    InvalidQuantile(String),
    /// Slice factor γ must be at least 2 (a synopsis needs two endpoints).
    InvalidGamma(u64),
    /// An event's timestamp does not fall into the window it was routed to.
    EventOutOfWindow {
        /// Event time of the offending event.
        ts: u64,
        /// Inclusive start of the window.
        start: u64,
        /// Exclusive end of the window.
        end: u64,
    },
    /// Synopses claim a different global window size than the candidate
    /// events that were later delivered.
    InconsistentSynopses(String),
    /// The calculation step is missing events for a slice that was selected
    /// as a candidate (e.g. a local node failed to answer).
    MissingCandidate {
        /// Human-readable identifier of the missing slice.
        slice: String,
    },
    /// A candidate slice's delivered events disagree with its synopsis
    /// (count or min/max mismatch) — indicates corruption in transit.
    CorruptCandidate(String),
    /// The requested rank exceeds the global window size.
    RankOutOfRange {
        /// Requested 1-based rank.
        rank: u64,
        /// Total number of events in the global window.
        total: u64,
    },
    /// The runtime lock-order tracker ([`crate::sync`]) observed a lock
    /// acquisition whose static rank is not strictly greater than every
    /// rank already held by the acquiring thread. Both site labels are
    /// reported so the inversion pair can be read straight off the error.
    /// Only constructed under `debug_assertions` or `--features strict`.
    LockOrderViolation {
        /// Label of the highest-ranked lock already held.
        held: String,
        /// Label of the lock whose acquisition violated the ranking.
        acquiring: String,
    },
    /// The checked-invariant layer ([`crate::invariant`]) detected a
    /// violation of the rank-bound correctness model: synopses that do not
    /// partition their window, a candidate set that misses the target rank,
    /// a selected event whose true rank differs from `Pos(q)`, or a γ that
    /// fails the cost-model bracketing. Always a bug or corruption, never a
    /// user error.
    InvariantViolation(String),
}

impl fmt::Display for DemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DemaError::EmptyWindow => write!(f, "quantile requested over an empty window"),
            DemaError::InvalidQuantile(msg) => write!(f, "invalid quantile: {msg}"),
            DemaError::InvalidGamma(g) => write!(f, "invalid slice factor γ={g}, must be >= 2"),
            DemaError::EventOutOfWindow { ts, start, end } => {
                write!(f, "event ts={ts} outside window [{start}, {end})")
            }
            DemaError::InconsistentSynopses(msg) => write!(f, "inconsistent synopses: {msg}"),
            DemaError::MissingCandidate { slice } => {
                write!(f, "candidate slice {slice} was never delivered")
            }
            DemaError::CorruptCandidate(msg) => write!(f, "corrupt candidate slice: {msg}"),
            DemaError::RankOutOfRange { rank, total } => {
                write!(f, "rank {rank} out of range for window of {total} events")
            }
            DemaError::LockOrderViolation { held, acquiring } => {
                write!(
                    f,
                    "lock-order violation: acquiring {acquiring} while holding {held}"
                )
            }
            DemaError::InvariantViolation(msg) => write!(f, "invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for DemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = DemaError::EventOutOfWindow {
            ts: 5,
            start: 10,
            end: 20,
        };
        assert_eq!(e.to_string(), "event ts=5 outside window [10, 20)");
        assert_eq!(
            DemaError::InvalidGamma(1).to_string(),
            "invalid slice factor γ=1, must be >= 2"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&DemaError::EmptyWindow);
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(DemaError::EmptyWindow, DemaError::EmptyWindow);
        assert_ne!(DemaError::EmptyWindow, DemaError::InvalidGamma(1));
    }

    #[test]
    fn lock_order_violation_names_both_sites() {
        let e = DemaError::LockOrderViolation {
            held: "local.store(rank 50)".into(),
            acquiring: "par.queue(rank 10)".into(),
        };
        match &e {
            DemaError::LockOrderViolation { held, acquiring } => {
                assert_eq!(held, "local.store(rank 50)");
                assert_eq!(acquiring, "par.queue(rank 10)");
            }
            other => panic!("unexpected variant: {other:?}"),
        }
        assert_eq!(
            e.to_string(),
            "lock-order violation: acquiring par.queue(rank 10) while holding local.store(rank 50)"
        );
    }

    #[test]
    fn invariant_violation_displays_detail() {
        let e = DemaError::InvariantViolation("counts sum to 9, window holds 10".into());
        assert_eq!(
            e.to_string(),
            "invariant violated: counts sum to 9, window holds 10"
        );
    }
}
