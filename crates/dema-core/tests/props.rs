//! Property-based tests for the Dema core: exactness of the full protocol
//! against a global sort, soundness of rank intervals, slicing partition
//! invariants, and optimality of the γ cost model.

use proptest::collection::vec;
use proptest::prelude::*;

use dema_core::coordinator::{exact_quantile_decentralized, quantile_ground_truth};
use dema_core::event::{Event, NodeId, WindowId};
use dema_core::gamma::{cost, optimal_gamma};
use dema_core::merge::{merge_runs, select_kth};
use dema_core::quantile::Quantile;
use dema_core::rank::rank_intervals;
use dema_core::selector::SelectionStrategy;
use dema_core::slice::cut_into_slices;

/// A cluster of local nodes with arbitrary (possibly duplicate-heavy,
/// possibly adversarially overlapping) event values.
fn arb_nodes() -> impl Strategy<Value = Vec<Vec<Event>>> {
    // Narrow value range forces duplicates and overlap; scale factor per
    // node mimics the paper's scale-rate experiments.
    vec((vec(-50i64..50, 0..120), 1i64..=10), 1..6).prop_map(|nodes| {
        nodes
            .into_iter()
            .enumerate()
            .map(|(n, (vals, scale))| {
                vals.into_iter()
                    .enumerate()
                    .map(|(i, v)| Event::new(v * scale, i as u64, (n * 1_000_000 + i) as u64))
                    .collect()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline invariant: all three selection strategies produce the
    /// exact quantile value for any input, any γ, any q.
    #[test]
    fn protocol_is_exact(
        nodes in arb_nodes(),
        gamma in 2u64..40,
        q in 0.01f64..=1.0,
    ) {
        let total: usize = nodes.iter().map(Vec::len).sum();
        prop_assume!(total > 0);
        let q = Quantile::new(q).unwrap();
        let truth = quantile_ground_truth(&nodes, q).unwrap();
        for strat in [
            SelectionStrategy::WindowCut,
            SelectionStrategy::ClassifiedScan,
            SelectionStrategy::NoCut,
        ] {
            let run = exact_quantile_decentralized(&nodes, q, gamma, strat).unwrap();
            prop_assert_eq!(run.result, truth.value, "strategy {:?}", strat);
            prop_assert_eq!(run.stats.total_events, total as u64);
        }
    }

    /// Candidate traffic never exceeds shipping everything, and the
    /// selection's bookkeeping is internally consistent.
    #[test]
    fn traffic_bounded_by_centralized(
        nodes in arb_nodes(),
        gamma in 2u64..40,
    ) {
        let total: usize = nodes.iter().map(Vec::len).sum();
        prop_assume!(total > 0);
        let run = exact_quantile_decentralized(
            &nodes, Quantile::MEDIAN, gamma, SelectionStrategy::WindowCut).unwrap();
        prop_assert!(run.stats.candidate_events_sent <= total as u64);
        prop_assert!(run.selection.rank_within_candidates() >= 1);
        prop_assert!(run.selection.rank_within_candidates() <= run.stats.candidate_events_sent);
    }

    /// WindowCut candidates are a subset of ClassifiedScan candidates,
    /// which are a subset of NoCut's overlap group... all of which contain
    /// the target. (Superset relations define the pruning hierarchy.)
    #[test]
    fn strategy_pruning_hierarchy(
        nodes in arb_nodes(),
        gamma in 2u64..40,
    ) {
        let total: usize = nodes.iter().map(Vec::len).sum();
        prop_assume!(total > 0);
        let runs: Vec<_> = [
            SelectionStrategy::WindowCut,
            SelectionStrategy::ClassifiedScan,
            SelectionStrategy::NoCut,
        ]
        .iter()
        .map(|&s| exact_quantile_decentralized(&nodes, Quantile::MEDIAN, gamma, s).unwrap())
        .collect();
        for c in &runs[0].selection.candidates {
            prop_assert!(runs[1].selection.candidates.contains(c),
                "WindowCut candidate {} missing from ClassifiedScan", c);
        }
        for c in &runs[1].selection.candidates {
            prop_assert!(runs[2].selection.candidates.contains(c),
                "ClassifiedScan candidate {} missing from NoCut", c);
        }
    }

    /// Rank intervals are sound: the true ranks of every slice's events lie
    /// within the computed interval for the actual arrangement.
    #[test]
    fn rank_intervals_sound(nodes in arb_nodes(), gamma in 2u64..20) {
        let total: usize = nodes.iter().map(Vec::len).sum();
        prop_assume!(total > 0);
        let mut synopses = Vec::new();
        let mut tagged: Vec<(usize, Event)> = Vec::new();
        for (n, events) in nodes.iter().enumerate() {
            let mut sorted = events.clone();
            sorted.sort_unstable();
            let slices =
                cut_into_slices(NodeId(n as u32), WindowId(0), sorted, gamma).unwrap();
            for s in slices {
                let syn = s.synopsis(0).unwrap();
                synopses.push(syn);
                for e in &s.events {
                    tagged.push((synopses.len() - 1, *e));
                }
            }
        }
        tagged.sort_by_key(|&(_, e)| e);
        let intervals = rank_intervals(&synopses);
        for (rank0, &(idx, _)) in tagged.iter().enumerate() {
            let rank = rank0 as u64 + 1;
            prop_assert!(intervals[idx].min_start <= rank && rank <= intervals[idx].max_end,
                "rank {} outside {:?}", rank, intervals[idx]);
        }
    }

    /// Slicing partitions the sorted input: concatenating slices
    /// reconstructs it, every slice except a degenerate singleton window has
    /// >= 2 events, and no slice exceeds γ + 1.
    #[test]
    fn slicing_partition_invariants(
        mut vals in vec(-1000i64..1000, 0..500),
        gamma in 2u64..64,
    ) {
        vals.sort_unstable();
        let events: Vec<Event> =
            vals.iter().enumerate().map(|(i, &v)| Event::new(v, 0, i as u64)).collect();
        let slices = cut_into_slices(NodeId(0), WindowId(0), events.clone(), gamma).unwrap();
        let rejoined: Vec<Event> =
            slices.iter().flat_map(|s| s.events.iter().copied()).collect();
        prop_assert_eq!(&rejoined, &events);
        if events.len() >= 2 {
            prop_assert!(slices.iter().all(|s| s.events.len() >= 2));
        }
        prop_assert!(slices.iter().all(|s| s.events.len() as u64 <= gamma + 1));
        for (i, s) in slices.iter().enumerate() {
            prop_assert_eq!(s.id.index as usize, i);
        }
    }

    /// `optimal_gamma` is the argmin of the discrete cost function.
    #[test]
    fn gamma_is_argmin(l_g in 1u64..5_000, m in 1u64..50) {
        let g = optimal_gamma(l_g, m);
        let c = cost(l_g, m, g);
        for cand in 2..=l_g.max(2) {
            prop_assert!(c <= cost(l_g, m, cand) + 1e-9,
                "γ={} cost {} beats chosen γ={} cost {}", cand, cost(l_g, m, cand), g, c);
        }
    }

    /// k-way merge equals a global sort, and `select_kth` agrees with the
    /// materialized merge at every position.
    #[test]
    fn merge_matches_sort(runs_raw in vec(vec(-100i64..100, 0..60), 0..8)) {
        let runs: Vec<Vec<Event>> = runs_raw
            .into_iter()
            .enumerate()
            .map(|(n, mut vals)| {
                vals.sort_unstable();
                vals.into_iter()
                    .enumerate()
                    .map(|(i, v)| Event::new(v, i as u64, (n * 10_000 + i) as u64))
                    .collect()
            })
            .collect();
        let merged = merge_runs(&runs);
        let mut expected: Vec<Event> = runs.iter().flatten().copied().collect();
        expected.sort_unstable();
        prop_assert_eq!(&merged, &expected);
        let total = merged.len() as u64;
        if total > 0 {
            for k in [1, total / 2 + 1, total] {
                prop_assert_eq!(select_kth(&runs, k).unwrap(), merged[(k - 1) as usize]);
            }
        }
    }

    /// The checked-invariant layer agrees with a naive global sort: for the
    /// rank `k = Pos(q)` the oracle's k-th smallest value passes
    /// `check_true_rank`, an impossible value trips it, and the event picked
    /// by the k-way merge passes `check_selected_event` and carries the
    /// oracle value.
    #[test]
    fn invariant_rank_oracle_matches_sort(nodes in arb_nodes(), q in 0.01f64..=1.0) {
        use dema_core::invariant;
        if !invariant::enabled() {
            return Ok(()); // release build without --features strict
        }
        let total: usize = nodes.iter().map(Vec::len).sum();
        prop_assume!(total > 0);
        let q = Quantile::new(q).unwrap();
        let k = q.pos(total as u64).unwrap();
        let mut sorted: Vec<Event> = nodes.iter().flatten().copied().collect();
        sorted.sort_unstable();
        let oracle = sorted[(k - 1) as usize];
        let values = || nodes.iter().flatten().map(|e| e.value);
        prop_assert!(invariant::check_true_rank(values(), k, oracle.value).is_ok());
        // Below every value, fewer than k values are ≤ it; above every
        // value, at least k rank below it. Both must always trip.
        prop_assert!(invariant::check_true_rank(values(), k, sorted[0].value - 1).is_err());
        prop_assert!(
            invariant::check_true_rank(values(), k, sorted[total - 1].value + 1).is_err()
        );
        let runs: Vec<Vec<Event>> = nodes
            .iter()
            .map(|v| {
                let mut s = v.clone();
                s.sort_unstable();
                s
            })
            .collect();
        let event = select_kth(&runs, k).unwrap();
        prop_assert!(invariant::check_selected_event(&runs, k, &event).is_ok());
        prop_assert_eq!(event.value, oracle.value);
    }

    /// Quantile positions are monotone in q and within range.
    #[test]
    fn quantile_pos_monotone(total in 1u64..100_000) {
        let mut last = 0u64;
        for q in [0.001, 0.1, 0.25, 0.3, 0.5, 0.75, 0.9, 0.999, 1.0] {
            let pos = Quantile::new(q).unwrap().pos(total).unwrap();
            prop_assert!(pos >= 1 && pos <= total);
            prop_assert!(pos >= last);
            last = pos;
        }
        prop_assert_eq!(last, total); // q = 1.0 hits the maximum
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Classification invariants: overlap groups partition the slices, are
    /// disjoint and ordered in value, their rank spans tile `1..=l_G`, and
    /// every cover-slice's interval lies within its coverer's.
    #[test]
    fn classification_invariants(nodes in arb_nodes(), gamma in 2u64..20) {
        use dema_core::classify::{classify, SliceKind};
        let total: usize = nodes.iter().map(Vec::len).sum();
        prop_assume!(total > 0);
        let mut synopses = Vec::new();
        for (n, events) in nodes.iter().enumerate() {
            let mut sorted = events.clone();
            sorted.sort_unstable();
            let slices = cut_into_slices(NodeId(n as u32), WindowId(0), sorted, gamma).unwrap();
            let t = slices.len() as u32;
            synopses.extend(slices.iter().map(|s| s.synopsis(t).unwrap()));
        }
        let c = classify(&synopses);
        // Partition: every slice in exactly one group.
        let mut seen = vec![0u32; synopses.len()];
        for g in &c.groups {
            for &m in &g.members {
                seen[m] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&x| x == 1));
        // Groups disjoint and ordered in value; rank spans tile the window.
        let mut expected_start = 1u64;
        for (i, g) in c.groups.iter().enumerate() {
            prop_assert!(g.first <= g.last);
            prop_assert_eq!(g.start_rank, expected_start, "group {}", i);
            prop_assert_eq!(g.end_rank - g.start_rank + 1, g.count);
            expected_start = g.end_rank + 1;
            if i + 1 < c.groups.len() {
                prop_assert!(g.last < c.groups[i + 1].first, "groups must not overlap");
            }
            // Group bounds cover every member interval.
            for &m in &g.members {
                prop_assert!(g.first <= synopses[m].first && synopses[m].last <= g.last);
            }
        }
        prop_assert_eq!(expected_start - 1, synopses.iter().map(|s| s.count).sum::<u64>());
        // Cover-slices lie inside their coverer; singleton groups are Separate.
        for (i, kind) in c.kinds.iter().enumerate() {
            match *kind {
                SliceKind::Cover { coverer } => {
                    prop_assert!(synopses[coverer].first <= synopses[i].first);
                    prop_assert!(synopses[i].last <= synopses[coverer].last);
                    prop_assert_eq!(c.group_of[i], c.group_of[coverer]);
                }
                SliceKind::Separate => {
                    prop_assert_eq!(c.groups[c.group_of[i]].members.len(), 1);
                }
                SliceKind::Compound => {
                    prop_assert!(c.groups[c.group_of[i]].members.len() > 1);
                }
            }
        }
    }

    /// Sliding-window Dema matches a brute-force per-window sort for random
    /// streams and geometries.
    #[test]
    fn sliding_matches_bruteforce(
        raw in proptest::collection::vec((-100i64..100, 0u64..6000), 1..400),
        panes_per_window in 1u64..5,
        slide in 250u64..1000,
        gamma in 2u64..32,
    ) {
        use dema_core::sliding::{sliding_quantiles, SlidingConfig};
        let events: Vec<Event> = raw
            .iter()
            .enumerate()
            .map(|(i, &(v, ts))| Event::new(v, ts, i as u64))
            .collect();
        let window_len = slide * panes_per_window;
        let config = SlidingConfig {
            window_len,
            slide,
            gamma,
            quantile: Quantile::MEDIAN,
            strategy: SelectionStrategy::WindowCut,
        };
        let (results, stats) =
            sliding_quantiles(std::slice::from_ref(&events), config).unwrap();
        // Brute force every reported window.
        for r in &results {
            let mut in_window: Vec<Event> =
                events.iter().filter(|e| e.ts >= r.start && e.ts < r.end).copied().collect();
            if in_window.is_empty() {
                prop_assert_eq!(r.value, None);
            } else {
                in_window.sort_unstable();
                let k = Quantile::MEDIAN.pos(in_window.len() as u64).unwrap();
                prop_assert_eq!(r.value, Some(in_window[(k - 1) as usize].value));
            }
        }
        prop_assert_eq!(stats.windows as usize, results.len());
    }

    /// Multi-quantile selection agrees with per-rank single selection for
    /// every rank in the batch.
    #[test]
    fn multi_selection_agrees_with_singles(nodes in arb_nodes(), gamma in 2u64..24) {
        use dema_core::multi::multi_quantile_decentralized;
        let total: usize = nodes.iter().map(Vec::len).sum();
        prop_assume!(total > 0);
        let quantiles = [0.2, 0.5, 0.8].map(|q| Quantile::new(q).unwrap());
        let multi = multi_quantile_decentralized(
            &nodes,
            &quantiles,
            gamma,
            SelectionStrategy::WindowCut,
        )
        .unwrap();
        for (i, q) in quantiles.iter().enumerate() {
            let truth = quantile_ground_truth(&nodes, *q).unwrap();
            prop_assert_eq!(multi[i], truth.value, "q={}", q);
        }
    }
}
