//! Integration tests of the checked-invariant layer: a corrupted synopsis
//! must trip [`DemaError::InvariantViolation`] at the audit boundary rather
//! than let a silently wrong quantile escape the protocol.
//!
//! Gated like the layer itself: these tests only assert trips when the
//! checks are compiled in (debug builds, or `--features strict`).

#![cfg(any(debug_assertions, feature = "strict"))]

use dema_core::error::DemaError;
use dema_core::event::{Event, NodeId, WindowId};
use dema_core::invariant;
use dema_core::slice::cut_into_slices;

/// Build a node's sorted window and its slice synopses.
fn sliced(
    node: u32,
    vals: &[i64],
    gamma: u64,
) -> (
    Vec<dema_core::slice::Slice>,
    Vec<dema_core::slice::SliceSynopsis>,
) {
    let mut events: Vec<Event> = vals
        .iter()
        .enumerate()
        .map(|(i, &v)| Event::new(v, i as u64, u64::from(node) * 10_000 + i as u64))
        .collect();
    events.sort_unstable();
    let slices = cut_into_slices(NodeId(node), WindowId(0), events, gamma).unwrap();
    let total = slices.len() as u32;
    let synopses: Vec<_> = slices.iter().map(|s| s.synopsis(total).unwrap()).collect();
    (slices, synopses)
}

#[test]
fn count_off_by_one_trips_invariant_violation() {
    let vals: Vec<i64> = (0..100).collect();
    let (slices, mut synopses) = sliced(0, &vals, 8);
    invariant::check_partition(&slices, &synopses, 100).unwrap();
    // Corrupt one synopsis: report one event fewer than the slice holds.
    synopses[3].count -= 1;
    let err = invariant::check_partition(&slices, &synopses, 100).unwrap_err();
    assert!(matches!(err, DemaError::InvariantViolation(_)), "{err}");
}

#[test]
fn count_corruption_also_trips_the_order_audit() {
    // The root never sees raw slices at identification time — only the
    // synopsis stream. A count inflated past the slice boundary breaks the
    // per-node totals audited by `check_synopsis_order` via `total_slices`
    // bookkeeping, or the partition audit on the sending node. Here: the
    // contiguity audit catches a dropped slice.
    let vals: Vec<i64> = (0..60).collect();
    let (_, mut synopses) = sliced(1, &vals, 6);
    invariant::check_synopsis_order(&synopses).unwrap();
    synopses.remove(2);
    let err = invariant::check_synopsis_order(&synopses).unwrap_err();
    assert!(matches!(err, DemaError::InvariantViolation(_)), "{err}");
}

#[test]
fn overlapping_same_node_synopses_trip_the_order_audit() {
    let vals: Vec<i64> = (0..40).collect();
    let (_, mut synopses) = sliced(2, &vals, 5);
    // Pretend a slice's last value overtakes its successor's first: the
    // per-node sorted-run guarantee is broken.
    synopses[0].last = synopses[1].last + 1;
    let err = invariant::check_synopsis_order(&synopses).unwrap_err();
    assert!(matches!(err, DemaError::InvariantViolation(_)), "{err}");
}
