//! Variable-rate streams: event rates that drift, ramp, and burst.
//!
//! The adaptive-γ controller (§3.3) exists because "different data streams
//! have varying event generation rates". [`VariableRateStream`] drives any
//! value distribution through a piecewise-constant rate profile — ramps,
//! day/night cycles, bursts — so adaptivity experiments can exercise
//! realistic rate churn instead of a single step.

use dema_core::event::Event;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::distribution::{Sampler, ValueDistribution};

/// One segment of a rate profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateSegment {
    /// Segment length in milliseconds (> 0).
    pub duration_ms: u64,
    /// Events per second during the segment (> 0).
    pub events_per_second: u64,
}

/// A piecewise-constant event-rate profile.
#[derive(Debug, Clone)]
pub struct RateProfile {
    segments: Vec<RateSegment>,
    /// Repeat the profile indefinitely (day/night cycles) or stop after one
    /// pass.
    cyclic: bool,
}

impl RateProfile {
    /// A profile from explicit segments.
    ///
    /// # Panics
    /// Panics on empty segments or zero durations/rates.
    pub fn new(segments: Vec<RateSegment>, cyclic: bool) -> RateProfile {
        assert!(!segments.is_empty(), "profile needs at least one segment");
        assert!(
            segments
                .iter()
                .all(|s| s.duration_ms > 0 && s.events_per_second > 0),
            "segments need positive duration and rate"
        );
        RateProfile { segments, cyclic }
    }

    /// A linear ramp from `from` to `to` events/s over `duration_ms`,
    /// discretized into `steps` segments.
    pub fn ramp(from: u64, to: u64, duration_ms: u64, steps: u32) -> RateProfile {
        assert!(steps > 0 && duration_ms >= steps as u64, "degenerate ramp");
        let segments = (0..steps)
            .map(|i| {
                let f = i as f64 / (steps - 1).max(1) as f64;
                let rate = from as f64 + f * (to as f64 - from as f64);
                RateSegment {
                    duration_ms: duration_ms / steps as u64,
                    events_per_second: (rate.round() as u64).max(1),
                }
            })
            .collect();
        RateProfile::new(segments, false)
    }

    /// Total duration of one pass (ms).
    pub fn period_ms(&self) -> u64 {
        self.segments.iter().map(|s| s.duration_ms).sum()
    }

    /// The rate in effect at time `t` (ms from stream start). For
    /// non-cyclic profiles, times past the end hold the last rate.
    pub fn rate_at(&self, t: u64) -> u64 {
        let period = self.period_ms();
        let t = if self.cyclic {
            t % period
        } else if t >= period {
            return self.segments.last().expect("non-empty").events_per_second;
        } else {
            t
        };
        let mut acc = 0;
        for s in &self.segments {
            acc += s.duration_ms;
            if t < acc {
                return s.events_per_second;
            }
        }
        self.segments.last().expect("non-empty").events_per_second
    }
}

/// An infinite event stream whose rate follows a [`RateProfile`].
///
/// Within each millisecond, `rate/1000` events are emitted (with exact
/// fractional accounting, so a 1-second window at rate `r` holds exactly
/// `r` events for rates divisible by the segment granularity).
#[derive(Debug, Clone)]
pub struct VariableRateStream {
    sampler: Sampler,
    rng: SmallRng,
    profile: RateProfile,
    scale_rate: i64,
    /// Current millisecond of stream time.
    now_ms: u64,
    /// Events still owed within the current millisecond.
    due_this_ms: u64,
    /// Fractional event debt carried between milliseconds (numerator of
    /// x/1000).
    carry: u64,
    produced: u64,
}

impl VariableRateStream {
    /// Create a stream.
    ///
    /// # Panics
    /// Panics if `scale_rate == 0`.
    pub fn new(
        dist: ValueDistribution,
        profile: RateProfile,
        scale_rate: i64,
        seed: u64,
    ) -> VariableRateStream {
        assert!(scale_rate != 0, "scale rate must be non-zero");
        VariableRateStream {
            sampler: Sampler::new(dist),
            rng: SmallRng::seed_from_u64(seed),
            profile,
            scale_rate,
            now_ms: 0,
            due_this_ms: 0,
            carry: 0,
            produced: 0,
        }
    }

    /// The profile driving this stream.
    pub fn profile(&self) -> &RateProfile {
        &self.profile
    }

    /// Produce the next event.
    pub fn next_event(&mut self) -> Event {
        // `carry` holds fractional events in thousandths: each millisecond
        // at `rate` events/s owes `rate` thousandths of an event.
        while self.due_this_ms == 0 {
            self.carry += self.profile.rate_at(self.now_ms);
            self.due_this_ms = self.carry / 1000;
            self.carry %= 1000;
            if self.due_this_ms == 0 {
                // Sub-1/ms rate: this millisecond emits nothing.
                self.now_ms += 1;
            }
        }
        self.due_this_ms -= 1;
        let e = Event::new(
            self.sampler
                .sample(&mut self.rng)
                .saturating_mul(self.scale_rate),
            self.now_ms,
            self.produced,
        );
        self.produced += 1;
        if self.due_this_ms == 0 {
            self.now_ms += 1;
        }
        e
    }

    /// All events of the next `n` tumbling windows of `window_len` ms,
    /// grouped per window.
    pub fn take_windows(&mut self, n: usize, window_len: u64) -> Vec<Vec<Event>> {
        assert!(window_len > 0, "window length must be positive");
        let mut out: Vec<Vec<Event>> = vec![Vec::new(); n];
        if n == 0 {
            return out;
        }
        let first_window = self.now_ms / window_len;
        let end = (first_window + n as u64) * window_len;
        loop {
            if self.now_ms >= end {
                break;
            }
            let e = self.next_event();
            if e.ts >= end {
                // Event landed past the range (rate transition edge): the
                // simplest correct policy is to stop; the event is dropped.
                break;
            }
            let idx = (e.ts / window_len - first_window) as usize;
            out[idx].push(e);
        }
        out
    }
}

impl Iterator for VariableRateStream {
    type Item = Event;
    fn next(&mut self) -> Option<Event> {
        Some(self.next_event())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform() -> ValueDistribution {
        ValueDistribution::Uniform { lo: 0, hi: 1000 }
    }

    #[test]
    fn constant_profile_matches_fixed_rate() {
        let profile = RateProfile::new(
            vec![RateSegment {
                duration_ms: 1000,
                events_per_second: 500,
            }],
            true,
        );
        let mut s = VariableRateStream::new(uniform(), profile, 1, 1);
        let windows = s.take_windows(4, 1000);
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(w.len(), 500, "window {i}");
        }
    }

    #[test]
    fn step_profile_changes_window_sizes() {
        let profile = RateProfile::new(
            vec![
                RateSegment {
                    duration_ms: 2000,
                    events_per_second: 1000,
                },
                RateSegment {
                    duration_ms: 2000,
                    events_per_second: 4000,
                },
            ],
            false,
        );
        let mut s = VariableRateStream::new(uniform(), profile, 1, 2);
        let windows = s.take_windows(5, 1000);
        assert_eq!(windows[0].len(), 1000);
        assert_eq!(windows[1].len(), 1000);
        assert_eq!(windows[2].len(), 4000);
        assert_eq!(windows[3].len(), 4000);
        // Non-cyclic: the last rate holds.
        assert_eq!(windows[4].len(), 4000);
    }

    #[test]
    fn cyclic_profile_repeats() {
        let profile = RateProfile::new(
            vec![
                RateSegment {
                    duration_ms: 1000,
                    events_per_second: 100,
                },
                RateSegment {
                    duration_ms: 1000,
                    events_per_second: 300,
                },
            ],
            true,
        );
        assert_eq!(profile.rate_at(0), 100);
        assert_eq!(profile.rate_at(1500), 300);
        assert_eq!(profile.rate_at(2500), 100);
        assert_eq!(profile.rate_at(3500), 300);
        let mut s = VariableRateStream::new(uniform(), profile, 1, 3);
        let windows = s.take_windows(4, 1000);
        let sizes: Vec<usize> = windows.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![100, 300, 100, 300]);
    }

    #[test]
    fn ramp_is_monotone() {
        let profile = RateProfile::ramp(1000, 9000, 8000, 8);
        let mut last = 0;
        for t in (0..8000).step_by(1000) {
            let r = profile.rate_at(t);
            assert!(r >= last, "rate dipped at t={t}");
            last = r;
        }
        assert_eq!(profile.rate_at(0), 1000);
        assert_eq!(profile.rate_at(7999), 9000);
    }

    #[test]
    fn timestamps_monotone_and_values_scaled() {
        let profile = RateProfile::ramp(500, 2000, 4000, 4);
        let events: Vec<Event> = VariableRateStream::new(uniform(), profile, 7, 4)
            .take(3000)
            .collect();
        assert!(events.windows(2).all(|w| w[0].ts <= w[1].ts));
        assert!(events.iter().all(|e| e.value % 7 == 0));
        let mut ids: Vec<u64> = events.iter().map(|e| e.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), events.len());
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_profile_rejected() {
        let _ = RateProfile::new(vec![], false);
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn zero_rate_rejected() {
        let _ = RateProfile::new(
            vec![RateSegment {
                duration_ms: 100,
                events_per_second: 0,
            }],
            false,
        );
    }
}
