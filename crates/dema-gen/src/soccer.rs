//! DEBS-2013-style soccer sensor stream.
//!
//! The DEBS 2013 Grand Challenge dataset contains readings from sensors in
//! players' boots and the ball during a soccer match: each record carries a
//! sensor id, a measurement (position/velocity/acceleration derived values)
//! and a timestamp, at high per-sensor rates. The dataset itself is not
//! redistributable, so this module simulates its relevant character:
//!
//! * a fixed set of sensors (players + ball), each an independent bounded
//!   random walk — locally smooth, globally drifting values;
//! * occasional "sprints" (bursts of fast drift) so windows see both dense
//!   and scattered value regions;
//! * round-robin interleaving of sensors into one stream, like the merged
//!   dataset file the paper's generators replay;
//! * the paper's `scale_rate` / `event_rate` knobs and per-node replay
//!   offsets.
//!
//! Values land in `[0, 100_000]` before scaling, comparable to the sensor
//! magnitude mix of the original data.

use dema_core::event::Event;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Upper bound of unscaled sensor values.
pub const VALUE_RANGE: i64 = 100_000;

/// One simulated in-game sensor.
#[derive(Debug, Clone)]
struct Sensor {
    value: i64,
    /// Per-step drift during normal play.
    base_step: i64,
    /// Remaining steps of the current sprint (0 = walking).
    sprint: u32,
}

/// A deterministic, infinite DEBS-2013-like event stream.
#[derive(Debug, Clone)]
pub struct SoccerGenerator {
    sensors: Vec<Sensor>,
    rng: SmallRng,
    scale_rate: i64,
    events_per_second: u64,
    start_ms: u64,
    produced: u64,
    next_sensor: usize,
}

impl SoccerGenerator {
    /// Default number of simulated sensors (22 players + ball, two sensors
    /// per player as in the original setup).
    pub const DEFAULT_SENSORS: usize = 45;

    /// Create a generator.
    ///
    /// * `seed` — determinism; also decides each sensor's starting value.
    /// * `scale_rate`, `events_per_second` — the paper's generator knobs.
    /// * `start_ms` — replay offset of this node.
    ///
    /// # Panics
    /// Panics if `events_per_second == 0` or `scale_rate == 0`.
    pub fn new(
        seed: u64,
        scale_rate: i64,
        events_per_second: u64,
        start_ms: u64,
    ) -> SoccerGenerator {
        assert!(events_per_second > 0, "event rate must be positive");
        assert!(scale_rate != 0, "scale rate must be non-zero");
        let mut rng = SmallRng::seed_from_u64(seed);
        let sensors = (0..Self::DEFAULT_SENSORS)
            .map(|_| Sensor {
                value: rng.random_range(0..=VALUE_RANGE),
                base_step: rng.random_range(5..200),
                sprint: 0,
            })
            .collect();
        SoccerGenerator {
            sensors,
            rng,
            scale_rate,
            events_per_second,
            start_ms,
            produced: 0,
            next_sensor: 0,
        }
    }

    /// Number of events produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Produce the next event.
    pub fn next_event(&mut self) -> Event {
        let i = self.produced;
        self.produced += 1;
        let ts = self.start_ms + i * 1000 / self.events_per_second;

        let sensor_idx = self.next_sensor;
        self.next_sensor = (self.next_sensor + 1) % self.sensors.len();
        let sensor = &mut self.sensors[sensor_idx];

        // 0.2 % chance to start a sprint of 200–800 readings.
        if sensor.sprint == 0 && self.rng.random_range(0..500) == 0 {
            sensor.sprint = self.rng.random_range(200..800);
        }
        let step_scale = if sensor.sprint > 0 {
            sensor.sprint -= 1;
            8
        } else {
            1
        };
        let max_step = sensor.base_step * step_scale;
        let step = self.rng.random_range(-max_step..=max_step);
        let mut next = sensor.value + step;
        if next > VALUE_RANGE {
            next = VALUE_RANGE - (next - VALUE_RANGE);
        }
        if next < 0 {
            next = -next;
        }
        sensor.value = next.clamp(0, VALUE_RANGE);

        Event::new(
            sensor.value.saturating_mul(self.scale_rate),
            ts,
            // ids encode (reading number, sensor) like the dataset's rows
            i * self.sensors.len() as u64 + sensor_idx as u64,
        )
    }

    /// Produce all events of the next `n` tumbling windows of `window_len`
    /// ms, grouped per window.
    pub fn take_windows(&mut self, n: usize, window_len: u64) -> Vec<Vec<Event>> {
        assert!(window_len > 0, "window length must be positive");
        let mut out: Vec<Vec<Event>> = Vec::with_capacity(n);
        if n == 0 {
            return out;
        }
        let first_window = self.peek_ts() / window_len;
        let end_ts = (first_window + n as u64) * window_len;
        let mut current: Vec<Event> = Vec::new();
        let mut current_window = first_window;
        while self.peek_ts() < end_ts {
            let e = self.next_event();
            let w = e.ts / window_len;
            while w > current_window {
                out.push(std::mem::take(&mut current));
                current_window += 1;
            }
            current.push(e);
        }
        out.push(current);
        while out.len() < n {
            out.push(Vec::new());
        }
        out
    }

    fn peek_ts(&self) -> u64 {
        self.start_ms + self.produced * 1000 / self.events_per_second
    }
}

impl Iterator for SoccerGenerator {
    type Item = Event;
    fn next(&mut self) -> Option<Event> {
        Some(self.next_event())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_in_range_and_scaled() {
        let mut g = SoccerGenerator::new(1, 1, 1000, 0);
        for _ in 0..10_000 {
            let e = g.next_event();
            assert!((0..=VALUE_RANGE).contains(&e.value));
        }
        let mut g10 = SoccerGenerator::new(1, 10, 1000, 0);
        for _ in 0..10_000 {
            let e = g10.next_event();
            assert!((0..=10 * VALUE_RANGE).contains(&e.value));
            assert_eq!(e.value % 10, 0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<Event> = SoccerGenerator::new(7, 1, 500, 0).take(1000).collect();
        let b: Vec<Event> = SoccerGenerator::new(7, 1, 500, 0).take(1000).collect();
        let c: Vec<Event> = SoccerGenerator::new(8, 1, 500, 0).take(1000).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn event_rate_governs_window_sizes() {
        let mut g = SoccerGenerator::new(3, 1, 2_000, 0);
        let windows = g.take_windows(5, 1000);
        assert_eq!(windows.len(), 5);
        for w in &windows {
            assert_eq!(w.len(), 2_000);
        }
    }

    #[test]
    fn replay_offset_shifts_start() {
        let mut g = SoccerGenerator::new(3, 1, 100, 12_345);
        assert_eq!(g.next_event().ts, 12_345);
    }

    #[test]
    fn values_are_locally_smooth_per_sensor() {
        // Consecutive readings of the same sensor should rarely jump far
        // outside sprint mode; sample sensor 0's series.
        let n_sensors = SoccerGenerator::DEFAULT_SENSORS;
        let events: Vec<Event> = SoccerGenerator::new(5, 1, 1000, 0)
            .take(n_sensors * 500)
            .collect();
        let series: Vec<i64> = events
            .iter()
            .enumerate()
            .filter(|(i, _)| i % n_sensors == 0)
            .map(|(_, e)| e.value)
            .collect();
        let big_jumps = series
            .windows(2)
            .filter(|w| (w[0] - w[1]).abs() > 3_000)
            .count();
        assert!(
            big_jumps < series.len() / 10,
            "{big_jumps} large jumps in {}",
            series.len()
        );
    }

    #[test]
    fn distribution_spans_a_wide_value_range() {
        let events: Vec<Event> = SoccerGenerator::new(11, 1, 1000, 0).take(50_000).collect();
        let min = events.iter().map(|e| e.value).min().unwrap();
        let max = events.iter().map(|e| e.value).max().unwrap();
        assert!(
            max - min > VALUE_RANGE / 2,
            "range [{min}, {max}] too narrow"
        );
    }

    #[test]
    fn timestamps_are_monotone() {
        let events: Vec<Event> = SoccerGenerator::new(2, 1, 777, 0).take(5000).collect();
        assert!(events.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn ids_are_unique() {
        let events: Vec<Event> = SoccerGenerator::new(2, 1, 777, 0).take(5000).collect();
        let mut ids: Vec<u64> = events.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), events.len());
    }
}
