//! Synthetic value distributions for controlled experiments.
//!
//! Each distribution produces `i64` sensor-style values. Normal sampling
//! uses Box–Muller (no external distribution crate); Zipf uses inverse-CDF
//! over a precomputed table, adequate for the bounded universes the
//! experiments use.

use rand::rngs::SmallRng;
use rand::RngExt;

/// A value model for synthetic event streams.
#[derive(Debug, Clone)]
pub enum ValueDistribution {
    /// Uniform over `[lo, hi]` (inclusive).
    Uniform {
        /// Smallest value.
        lo: i64,
        /// Largest value.
        hi: i64,
    },
    /// Gaussian with the given mean and standard deviation, rounded.
    Normal {
        /// Mean of the distribution.
        mean: f64,
        /// Standard deviation (must be > 0).
        std_dev: f64,
    },
    /// Zipf over `{1, …, n}` with exponent `s` — heavy duplication on small
    /// values, the adversarial case for overlap-based pruning.
    Zipf {
        /// Universe size.
        n: u32,
        /// Skew exponent (s = 0 ⇒ uniform; larger ⇒ more skew).
        s: f64,
    },
    /// A mixture of tight clusters — models co-located sensors reporting
    /// near-identical readings.
    Clustered {
        /// Cluster centers.
        centers: Vec<i64>,
        /// Uniform spread around each center.
        spread: i64,
    },
    /// Bounded random walk — the smooth, drifting shape of real sensor
    /// streams (what [`crate::soccer`] builds on).
    RandomWalk {
        /// Initial value.
        start: i64,
        /// Maximum per-step movement.
        max_step: i64,
        /// Reflective lower bound.
        lo: i64,
        /// Reflective upper bound.
        hi: i64,
    },
}

/// Stateful sampler for one [`ValueDistribution`].
#[derive(Debug, Clone)]
pub struct Sampler {
    dist: ValueDistribution,
    /// Zipf inverse-CDF table (cumulative weights), lazily built.
    zipf_cdf: Vec<f64>,
    /// Random-walk current position.
    walk: i64,
    /// Spare Gaussian deviate from Box–Muller.
    gauss_spare: Option<f64>,
}

impl Sampler {
    /// Create a sampler; precomputes tables where needed.
    ///
    /// # Panics
    /// Panics on degenerate parameters (`lo > hi`, `std_dev <= 0`, `n == 0`,
    /// empty `centers`, `max_step < 0`).
    pub fn new(dist: ValueDistribution) -> Sampler {
        let mut zipf_cdf = Vec::new();
        let mut walk = 0;
        match &dist {
            ValueDistribution::Uniform { lo, hi } => assert!(lo <= hi, "uniform lo > hi"),
            ValueDistribution::Normal { std_dev, .. } => {
                assert!(*std_dev > 0.0, "std_dev must be positive")
            }
            ValueDistribution::Zipf { n, s } => {
                assert!(*n > 0, "zipf universe must be non-empty");
                let mut acc = 0.0;
                zipf_cdf.reserve(*n as usize);
                for k in 1..=*n {
                    acc += 1.0 / (k as f64).powf(*s);
                    zipf_cdf.push(acc);
                }
            }
            ValueDistribution::Clustered { centers, spread } => {
                assert!(!centers.is_empty(), "need at least one cluster center");
                assert!(*spread >= 0, "spread must be non-negative");
            }
            ValueDistribution::RandomWalk {
                start,
                max_step,
                lo,
                hi,
            } => {
                assert!(lo <= hi, "walk lo > hi");
                assert!(*max_step >= 0, "max_step must be non-negative");
                walk = (*start).clamp(*lo, *hi);
            }
        }
        Sampler {
            dist,
            zipf_cdf,
            walk,
            gauss_spare: None,
        }
    }

    /// Draw the next value.
    pub fn sample(&mut self, rng: &mut SmallRng) -> i64 {
        match &self.dist {
            ValueDistribution::Uniform { lo, hi } => rng.random_range(*lo..=*hi),
            ValueDistribution::Normal { mean, std_dev } => {
                let z = self.gauss_spare.take().unwrap_or_else(|| {
                    // Box–Muller: two uniforms → two independent normals.
                    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
                    let u2: f64 = rng.random_range(0.0..1.0);
                    let r = (-2.0 * u1.ln()).sqrt();
                    let theta = 2.0 * std::f64::consts::PI * u2;
                    self.gauss_spare = Some(r * theta.sin());
                    r * theta.cos()
                });
                (mean + std_dev * z).round() as i64
            }
            ValueDistribution::Zipf { .. } => {
                let total = *self.zipf_cdf.last().expect("table built in new()");
                let u: f64 = rng.random_range(0.0..total);
                let idx = self.zipf_cdf.partition_point(|&c| c < u);
                idx as i64 + 1
            }
            ValueDistribution::Clustered { centers, spread } => {
                let c = centers[rng.random_range(0..centers.len())];
                if *spread == 0 {
                    c
                } else {
                    c + rng.random_range(-*spread..=*spread)
                }
            }
            ValueDistribution::RandomWalk {
                max_step, lo, hi, ..
            } => {
                let step = if *max_step == 0 {
                    0
                } else {
                    rng.random_range(-*max_step..=*max_step)
                };
                let mut next = self.walk.saturating_add(step);
                // Reflect at the bounds so the walk doesn't stick to edges.
                if next > *hi {
                    next = *hi - (next - *hi);
                }
                if next < *lo {
                    next = *lo + (*lo - next);
                }
                self.walk = next.clamp(*lo, *hi);
                self.walk
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    fn draw(dist: ValueDistribution, n: usize, seed: u64) -> Vec<i64> {
        let mut s = Sampler::new(dist);
        let mut r = rng(seed);
        (0..n).map(|_| s.sample(&mut r)).collect()
    }

    #[test]
    fn uniform_stays_in_bounds_and_covers_range() {
        let vals = draw(ValueDistribution::Uniform { lo: -10, hi: 10 }, 5000, 1);
        assert!(vals.iter().all(|&v| (-10..=10).contains(&v)));
        assert!(vals.contains(&-10));
        assert!(vals.contains(&10));
    }

    #[test]
    fn uniform_single_point() {
        let vals = draw(ValueDistribution::Uniform { lo: 7, hi: 7 }, 100, 2);
        assert!(vals.iter().all(|&v| v == 7));
    }

    #[test]
    fn normal_mean_and_spread() {
        let vals = draw(
            ValueDistribution::Normal {
                mean: 1000.0,
                std_dev: 50.0,
            },
            20_000,
            3,
        );
        let mean = vals.iter().sum::<i64>() as f64 / vals.len() as f64;
        assert!((mean - 1000.0).abs() < 5.0, "mean {mean}");
        let var = vals.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        assert!((var.sqrt() - 50.0).abs() < 5.0, "std {}", var.sqrt());
    }

    #[test]
    fn zipf_is_skewed_towards_small_values() {
        let vals = draw(ValueDistribution::Zipf { n: 1000, s: 1.2 }, 20_000, 4);
        assert!(vals.iter().all(|&v| (1..=1000).contains(&v)));
        let ones = vals.iter().filter(|&&v| v == 1).count();
        let hundreds = vals.iter().filter(|&&v| v >= 100).count();
        assert!(ones > vals.len() / 20, "zipf head too light: {ones}");
        assert!(ones > hundreds / 4, "head {ones} vs tail {hundreds}");
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let vals = draw(ValueDistribution::Zipf { n: 10, s: 0.0 }, 50_000, 5);
        for target in 1..=10i64 {
            let c = vals.iter().filter(|&&v| v == target).count();
            assert!(
                (c as f64 / 5000.0 - 1.0).abs() < 0.15,
                "value {target}: {c}"
            );
        }
    }

    #[test]
    fn clustered_values_near_centers() {
        let vals = draw(
            ValueDistribution::Clustered {
                centers: vec![0, 1000],
                spread: 5,
            },
            2000,
            6,
        );
        assert!(vals.iter().all(|&v| v.abs() <= 5 || (v - 1000).abs() <= 5));
        assert!(vals.iter().any(|&v| v.abs() <= 5));
        assert!(vals.iter().any(|&v| (v - 1000).abs() <= 5));
    }

    #[test]
    fn random_walk_bounded_and_smooth() {
        let vals = draw(
            ValueDistribution::RandomWalk {
                start: 500,
                max_step: 10,
                lo: 0,
                hi: 1000,
            },
            10_000,
            7,
        );
        assert!(vals.iter().all(|&v| (0..=1000).contains(&v)));
        for w in vals.windows(2) {
            assert!((w[0] - w[1]).abs() <= 20, "jump {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = || ValueDistribution::Normal {
            mean: 0.0,
            std_dev: 10.0,
        };
        assert_eq!(draw(d(), 100, 42), draw(d(), 100, 42));
        assert_ne!(draw(d(), 100, 42), draw(d(), 100, 43));
    }

    #[test]
    #[should_panic(expected = "lo > hi")]
    fn uniform_bad_bounds_panics() {
        let _ = Sampler::new(ValueDistribution::Uniform { lo: 5, hi: 1 });
    }

    #[test]
    #[should_panic(expected = "std_dev")]
    fn normal_bad_std_panics() {
        let _ = Sampler::new(ValueDistribution::Normal {
            mean: 0.0,
            std_dev: 0.0,
        });
    }

    #[test]
    #[should_panic(expected = "universe")]
    fn zipf_empty_universe_panics() {
        let _ = Sampler::new(ValueDistribution::Zipf { n: 0, s: 1.0 });
    }
}
