//! Workload traces: record generated streams to a file and replay them.
//!
//! The paper replays a fixed dataset so every system sees identical input;
//! our generators are deterministic by seed, but a trace file additionally
//! pins a workload across machines, versions, and generator changes — the
//! reproducibility anchor for the experiment CSVs.
//!
//! Format (little-endian): magic `DEMT`, u32 version, u64 event count,
//! then `(i64 value, u64 ts, u64 id)` triples.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use dema_core::event::Event;

const MAGIC: &[u8; 4] = b"DEMT";
const VERSION: u32 = 1;

/// Errors while reading a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a trace file or unsupported version.
    Format(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "i/o error: {e}"),
            TraceError::Format(msg) => write!(f, "bad trace: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

/// Write `events` as a trace file at `path`.
pub fn write_trace(path: &Path, events: &[Event]) -> Result<(), TraceError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(events.len() as u64).to_le_bytes())?;
    for e in events {
        w.write_all(&e.value.to_le_bytes())?;
        w.write_all(&e.ts.to_le_bytes())?;
        w.write_all(&e.id.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Read a trace file back.
pub fn read_trace(path: &Path) -> Result<Vec<Event>, TraceError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TraceError::Format("missing DEMT magic".into()));
    }
    let mut word = [0u8; 4];
    r.read_exact(&mut word)?;
    let version = u32::from_le_bytes(word);
    if version != VERSION {
        return Err(TraceError::Format(format!("unsupported version {version}")));
    }
    let mut long = [0u8; 8];
    r.read_exact(&mut long)?;
    let count = u64::from_le_bytes(long);
    if count > (1 << 34) {
        return Err(TraceError::Format(format!(
            "implausible event count {count}"
        )));
    }
    let mut events = Vec::with_capacity(count as usize);
    let mut rec = [0u8; 24];
    for _ in 0..count {
        r.read_exact(&mut rec)?;
        events.push(Event {
            value: i64::from_le_bytes(rec[0..8].try_into().expect("8 bytes")),
            ts: u64::from_le_bytes(rec[8..16].try_into().expect("8 bytes")),
            id: u64::from_le_bytes(rec[16..24].try_into().expect("8 bytes")),
        });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SoccerGenerator;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dema-trace-{}-{name}", std::process::id()))
    }

    #[test]
    fn roundtrip() {
        let events: Vec<Event> = SoccerGenerator::new(1, 1, 1000, 0).take(5000).collect();
        let path = tmp("roundtrip.trace");
        write_trace(&path, &events).unwrap();
        let back = read_trace(&path).unwrap();
        assert_eq!(back, events);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_trace() {
        let path = tmp("empty.trace");
        write_trace(&path, &[]).unwrap();
        assert!(read_trace(&path).unwrap().is_empty());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage.trace");
        std::fs::write(&path, b"not a trace at all").unwrap();
        assert!(matches!(read_trace(&path), Err(TraceError::Format(_))));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rejects_truncation() {
        let events: Vec<Event> = SoccerGenerator::new(1, 1, 1000, 0).take(100).collect();
        let path = tmp("trunc.trace");
        write_trace(&path, &events).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(matches!(read_trace(&path), Err(TraceError::Io(_))));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rejects_wrong_version() {
        let path = tmp("version.trace");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_trace(&path), Err(TraceError::Format(_))));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn extreme_values_roundtrip() {
        let events = vec![
            Event::new(i64::MIN, 0, 0),
            Event::new(i64::MAX, u64::MAX, u64::MAX),
        ];
        let path = tmp("extreme.trace");
        write_trace(&path, &events).unwrap();
        assert_eq!(read_trace(&path).unwrap(), events);
        std::fs::remove_file(path).unwrap();
    }
}
