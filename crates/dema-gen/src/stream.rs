//! Event streams: a value model plus the paper's two generator knobs
//! (`scale_rate`, `event_rate`) and a replay offset, packaged as an
//! infinite, deterministic iterator of [`Event`]s.

use dema_core::event::Event;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::distribution::{Sampler, ValueDistribution};

/// Configuration of one node's event stream.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// RNG seed; streams with the same seed are identical.
    pub seed: u64,
    /// Value multiplier, the paper's *scale rate*. Scale 1 on every node ⇒
    /// overlapping distributions; very different scales ⇒ disjoint ones.
    pub scale_rate: i64,
    /// Events per second, the paper's *event rate*; determines local window
    /// sizes. Must be > 0.
    pub events_per_second: u64,
    /// Event-time at which the stream starts (ms) — the paper replays the
    /// dataset "from different positions" per node.
    pub start_ms: u64,
    /// First event id to assign (ids are unique per stream node).
    pub first_id: u64,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            seed: 0,
            scale_rate: 1,
            events_per_second: 1000,
            start_ms: 0,
            first_id: 0,
        }
    }
}

/// An infinite, deterministic stream of events.
///
/// Timestamps advance so that exactly `events_per_second` events carry
/// timestamps within every one-second span: event `i` is stamped
/// `start_ms + i·1000 / rate`.
#[derive(Debug, Clone)]
pub struct EventStream {
    sampler: Sampler,
    rng: SmallRng,
    config: StreamConfig,
    produced: u64,
}

impl EventStream {
    /// Create a stream over the given value distribution.
    ///
    /// # Panics
    /// Panics if `events_per_second == 0` or `scale_rate == 0`.
    pub fn new(dist: ValueDistribution, config: StreamConfig) -> EventStream {
        assert!(config.events_per_second > 0, "event rate must be positive");
        assert!(config.scale_rate != 0, "scale rate must be non-zero");
        EventStream {
            sampler: Sampler::new(dist),
            rng: SmallRng::seed_from_u64(config.seed),
            config,
            produced: 0,
        }
    }

    /// The stream's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Number of events produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Produce the next event.
    pub fn next_event(&mut self) -> Event {
        let i = self.produced;
        self.produced += 1;
        let ts = self.config.start_ms + i * 1000 / self.config.events_per_second;
        let value = self
            .sampler
            .sample(&mut self.rng)
            .saturating_mul(self.config.scale_rate);
        Event::new(value, ts, self.config.first_id + i)
    }

    /// Produce all events of the next `n` windows of `window_len` ms,
    /// grouped per window. Convenience for window-at-a-time experiments.
    pub fn take_windows(&mut self, n: usize, window_len: u64) -> Vec<Vec<Event>> {
        assert!(window_len > 0, "window length must be positive");
        let mut out: Vec<Vec<Event>> = Vec::with_capacity(n);
        if n == 0 {
            return out;
        }
        let first = self.peek_ts();
        let first_window = first / window_len;
        let end_ts = (first_window + n as u64) * window_len;
        let mut current: Vec<Event> = Vec::new();
        let mut current_window = first_window;
        loop {
            if self.peek_ts() >= end_ts {
                break;
            }
            let e = self.next_event();
            let w = e.ts / window_len;
            while w > current_window {
                out.push(std::mem::take(&mut current));
                current_window += 1;
            }
            current.push(e);
        }
        out.push(current);
        while out.len() < n {
            out.push(Vec::new());
        }
        out
    }

    /// Timestamp the next event will carry.
    fn peek_ts(&self) -> u64 {
        self.config.start_ms + self.produced * 1000 / self.config.events_per_second
    }
}

impl Iterator for EventStream {
    type Item = Event;
    fn next(&mut self) -> Option<Event> {
        Some(self.next_event())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_stream(config: StreamConfig) -> EventStream {
        EventStream::new(ValueDistribution::Uniform { lo: 0, hi: 1000 }, config)
    }

    #[test]
    fn event_rate_controls_timestamps() {
        let mut s = uniform_stream(StreamConfig {
            events_per_second: 4,
            ..Default::default()
        });
        let ts: Vec<u64> = (0..8).map(|_| s.next_event().ts).collect();
        assert_eq!(ts, vec![0, 250, 500, 750, 1000, 1250, 1500, 1750]);
    }

    #[test]
    fn exactly_rate_events_per_second() {
        let rate = 777;
        let mut s = uniform_stream(StreamConfig {
            events_per_second: rate,
            ..Default::default()
        });
        let events: Vec<_> = (0..3 * rate).map(|_| s.next_event()).collect();
        for second in 0..3u64 {
            let n = events
                .iter()
                .filter(|e| e.ts >= second * 1000 && e.ts < (second + 1) * 1000)
                .count();
            assert_eq!(n as u64, rate, "second {second}");
        }
    }

    #[test]
    fn scale_rate_multiplies_values() {
        let base = StreamConfig {
            seed: 9,
            scale_rate: 1,
            ..Default::default()
        };
        let scaled = StreamConfig {
            seed: 9,
            scale_rate: 10,
            ..Default::default()
        };
        let mut a = uniform_stream(base);
        let mut b = uniform_stream(scaled);
        for _ in 0..100 {
            let (x, y) = (a.next_event(), b.next_event());
            assert_eq!(x.value * 10, y.value);
            assert_eq!(x.ts, y.ts);
        }
    }

    #[test]
    fn start_offset_shifts_time_and_ids() {
        let mut s = uniform_stream(StreamConfig {
            start_ms: 5_000,
            first_id: 1_000_000,
            events_per_second: 2,
            ..Default::default()
        });
        let e = s.next_event();
        assert_eq!(e.ts, 5_000);
        assert_eq!(e.id, 1_000_000);
        assert_eq!(s.next_event().ts, 5_500);
    }

    #[test]
    fn deterministic_replay() {
        let cfg = StreamConfig {
            seed: 4242,
            ..Default::default()
        };
        let a: Vec<Event> = uniform_stream(cfg.clone()).take(500).collect();
        let b: Vec<Event> = uniform_stream(cfg).take(500).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn take_windows_groups_by_window() {
        let mut s = uniform_stream(StreamConfig {
            events_per_second: 10,
            ..Default::default()
        });
        let windows = s.take_windows(3, 1000);
        assert_eq!(windows.len(), 3);
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(w.len(), 10, "window {i}");
            assert!(w.iter().all(|e| e.ts / 1000 == i as u64));
        }
        // The stream continues where take_windows stopped.
        assert_eq!(s.next_event().ts, 3000);
    }

    #[test]
    fn take_windows_respects_offset_mid_window() {
        let mut s = uniform_stream(StreamConfig {
            events_per_second: 10,
            start_ms: 500,
            ..Default::default()
        });
        let windows = s.take_windows(2, 1000);
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].len(), 5); // 500..1000
        assert_eq!(windows[1].len(), 10); // 1000..2000
    }

    #[test]
    fn ids_are_sequential_and_unique() {
        let mut s = uniform_stream(StreamConfig::default());
        let ids: Vec<u64> = (0..100).map(|_| s.next_event().id).collect();
        assert_eq!(ids, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "event rate")]
    fn zero_rate_panics() {
        let _ = uniform_stream(StreamConfig {
            events_per_second: 0,
            ..Default::default()
        });
    }

    #[test]
    #[should_panic(expected = "scale rate")]
    fn zero_scale_panics() {
        let _ = uniform_stream(StreamConfig {
            scale_rate: 0,
            ..Default::default()
        });
    }
}
