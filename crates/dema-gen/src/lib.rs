#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # dema-gen
//!
//! Workload generators for the Dema experiments.
//!
//! The paper replays the DEBS 2013 Grand Challenge soccer dataset (player
//! sensor readings) from different positions per local node, with two knobs:
//!
//! * **scale rate** — multiplies event values, shifting a node's value
//!   distribution (identical scale rates ⇒ overlapping local windows, very
//!   different ones ⇒ disjoint windows);
//! * **event rate** — events per second, which determines local window
//!   sizes.
//!
//! We do not ship the proprietary dataset; [`soccer::SoccerGenerator`]
//! reproduces its relevant character — locally smooth, globally drifting
//! sensor values with occasional bursts — via a seeded random walk over
//! simulated player sensors, with the same `(id, value, timestamp)` schema
//! and the same two knobs. For controlled studies,
//! [`distribution::ValueDistribution`] provides uniform / normal / zipf /
//! clustered value models behind the same [`stream::EventStream`] interface.
//!
//! All generators are deterministic given a seed.

pub mod distribution;
pub mod profile;
pub mod soccer;
pub mod stream;
pub mod trace;

pub use distribution::ValueDistribution;
pub use profile::{RateProfile, RateSegment, VariableRateStream};
pub use soccer::SoccerGenerator;
pub use stream::{EventStream, StreamConfig};
pub use trace::{read_trace, write_trace};
