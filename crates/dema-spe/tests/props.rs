//! Property tests for the SPE substrate: stream slicing is observationally
//! identical to the unshared operator for every aggregate and window
//! geometry, and the aggregate algebra is associative under splits.

use proptest::collection::vec;
use proptest::prelude::*;

use dema_core::event::Event;
use dema_spe::aggregate::{Aggregate, Average, Count, Max, Min, QuantileAgg, Sum, Variance};
use dema_spe::slicing::StreamSlicer;
use dema_spe::{WindowAssigner, WindowOperator};

fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    vec((-1000i64..1000, 0u64..8000), 0..400).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (v, ts))| Event::new(v, ts, i as u64))
            .collect()
    })
}

fn arb_assigner() -> impl Strategy<Value = WindowAssigner> {
    prop_oneof![
        (100u64..2000).prop_map(|len| WindowAssigner::Tumbling { len }),
        (1u64..8, 50u64..500).prop_map(|(mult, slide)| WindowAssigner::Sliding {
            len: slide * mult,
            slide,
        }),
    ]
}

/// Run both operators over the same data and compare trigger-for-trigger.
fn slicer_matches_naive<A: Aggregate + Copy>(
    agg: A,
    assigner: WindowAssigner,
    events: &[Event],
) -> std::result::Result<(), TestCaseError>
where
    A::Out: PartialEq + std::fmt::Debug,
{
    let mut sliced = StreamSlicer::new(assigner, agg);
    let mut naive = WindowOperator::new(assigner, agg);
    for e in events {
        sliced.ingest(e);
        naive.ingest(e);
    }
    let a = sliced.advance_watermark(10_000);
    let b = naive.advance_watermark(10_000);
    prop_assert_eq!(a.len(), b.len());
    for ((sa, va), (sb, vb)) in a.into_iter().zip(b) {
        prop_assert_eq!(sa, sb);
        prop_assert_eq!(va, vb, "window {:?}", sa);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn slicing_equals_naive_for_sum(events in arb_events(), assigner in arb_assigner()) {
        slicer_matches_naive(Sum, assigner, &events)?;
    }

    #[test]
    fn slicing_equals_naive_for_count_max_min(
        events in arb_events(),
        assigner in arb_assigner(),
    ) {
        slicer_matches_naive(Count, assigner, &events)?;
        slicer_matches_naive(Max, assigner, &events)?;
        slicer_matches_naive(Min, assigner, &events)?;
    }

    #[test]
    fn slicing_equals_naive_for_average(events in arb_events(), assigner in arb_assigner()) {
        slicer_matches_naive(Average, assigner, &events)?;
    }

    #[test]
    fn slicing_equals_naive_for_median(events in arb_events(), assigner in arb_assigner()) {
        // Holistic aggregate: slicing still must not change results.
        slicer_matches_naive(QuantileAgg::median(), assigner, &events)?;
    }

    /// Variance combination (Chan et al.) equals single-pass Welford over
    /// arbitrary splits, within floating-point tolerance.
    #[test]
    fn variance_split_invariance(vals in vec(-1000i64..1000, 1..300), split in 0usize..300) {
        let events: Vec<Event> =
            vals.iter().enumerate().map(|(i, &v)| Event::new(v, 0, i as u64)).collect();
        let split = split.min(events.len());
        let agg = Variance;
        let mut whole = agg.identity();
        for e in &events {
            agg.lift(&mut whole, e);
        }
        let mut left = agg.identity();
        for e in &events[..split] {
            agg.lift(&mut left, e);
        }
        let mut right = agg.identity();
        for e in &events[split..] {
            agg.lift(&mut right, e);
        }
        let combined = agg.combine(left, &right);
        let a = agg.lower(&whole).unwrap();
        let b = agg.lower(&combined).unwrap();
        prop_assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0), "{a} vs {b}");
    }

    /// Every event is lifted exactly once by the slicer regardless of
    /// geometry; the naive operator lifts once per covering window.
    #[test]
    fn slicer_lift_counts(events in arb_events(), assigner in arb_assigner()) {
        let mut sliced = StreamSlicer::new(assigner, Count);
        let mut accepted = 0u64;
        for e in &events {
            if sliced.ingest(e) {
                accepted += 1;
            }
        }
        prop_assert_eq!(sliced.lifts(), accepted);
    }
}
