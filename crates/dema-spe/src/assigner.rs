//! Window assignment: the three Dataflow-model window types (§2.1).
//!
//! Tumbling and sliding windows are *aligned* (their spans depend only on
//! the timestamp); session windows are data-driven and handled by a stateful
//! tracker that merges overlapping gaps.

/// A half-open event-time span `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WindowSpan {
    /// Inclusive start (ms).
    pub start: u64,
    /// Exclusive end (ms).
    pub end: u64,
}

impl WindowSpan {
    /// Create a span; `start < end` required.
    pub fn new(start: u64, end: u64) -> WindowSpan {
        assert!(start < end, "window span must be non-empty");
        WindowSpan { start, end }
    }

    /// `true` if `ts` falls inside the span.
    #[inline]
    pub fn contains(&self, ts: u64) -> bool {
        self.start <= ts && ts < self.end
    }

    /// Length in ms.
    #[inline]
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Spans are never empty; provided for clippy symmetry with `len`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Aligned window assigners (tumbling / sliding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowAssigner {
    /// Fixed, non-overlapping windows of `len` ms. The special case of
    /// sliding windows where slide = len.
    Tumbling {
        /// Window length (ms), > 0.
        len: u64,
    },
    /// Overlapping windows of `len` ms starting every `slide` ms.
    Sliding {
        /// Window length (ms), > 0.
        len: u64,
        /// Step between consecutive window starts (ms), `0 < slide <= len`.
        slide: u64,
    },
}

impl WindowAssigner {
    /// All windows containing an event at `ts`, ascending by start.
    pub fn assign(&self, ts: u64) -> Vec<WindowSpan> {
        match *self {
            WindowAssigner::Tumbling { len } => {
                assert!(len > 0, "window length must be positive");
                let start = ts / len * len;
                vec![WindowSpan::new(start, start + len)]
            }
            WindowAssigner::Sliding { len, slide } => {
                assert!(
                    len > 0 && slide > 0 && slide <= len,
                    "invalid sliding window"
                );
                // Last window starting at or before ts:
                let last_start = ts / slide * slide;
                // First window still containing ts:
                let reach = len - 1; // a window started up to `reach` earlier still contains ts
                let first_start = last_start.saturating_sub(reach / slide * slide);
                let mut out = Vec::with_capacity(((last_start - first_start) / slide + 1) as usize);
                let mut start = first_start;
                while start <= last_start {
                    if ts < start + len {
                        out.push(WindowSpan::new(start, start + len));
                    }
                    start += slide;
                }
                out
            }
        }
    }

    /// Number of concurrent windows an event belongs to.
    pub fn windows_per_event(&self) -> u64 {
        match *self {
            WindowAssigner::Tumbling { .. } => 1,
            WindowAssigner::Sliding { len, slide } => len.div_ceil(slide),
        }
    }
}

/// Stateful session-window tracker with a fixed inactivity gap.
///
/// Each new event either extends an existing session (if within `gap` of
/// it) or opens a new one; sessions that an event bridges are merged.
#[derive(Debug, Clone)]
pub struct SessionTracker {
    gap: u64,
    /// Open sessions as (start, last_event_ts), sorted by start.
    sessions: Vec<(u64, u64)>,
}

impl SessionTracker {
    /// Create a tracker with the given inactivity gap (ms, > 0).
    pub fn new(gap: u64) -> SessionTracker {
        assert!(gap > 0, "session gap must be positive");
        SessionTracker {
            gap,
            sessions: Vec::new(),
        }
    }

    /// Register an event; returns the span of the session it now belongs to
    /// (`[start, last + gap)`).
    pub fn observe(&mut self, ts: u64) -> WindowSpan {
        // Find sessions this event touches: ts within gap of [start, last].
        let mut touched_start = ts;
        let mut touched_last = ts;
        self.sessions.retain(|&(start, last)| {
            let touches = ts + self.gap > start && ts < last + self.gap;
            if touches {
                touched_start = touched_start.min(start);
                touched_last = touched_last.max(last);
            }
            !touches
        });
        self.sessions.push((touched_start, touched_last));
        self.sessions.sort_unstable();
        WindowSpan::new(touched_start, touched_last + self.gap)
    }

    /// Close and return all sessions whose gap has fully elapsed at
    /// `watermark`.
    pub fn close_expired(&mut self, watermark: u64) -> Vec<WindowSpan> {
        let gap = self.gap;
        let (expired, open): (Vec<_>, Vec<_>) = self
            .sessions
            .drain(..)
            .partition(|&(_, last)| last + gap <= watermark);
        self.sessions = open;
        expired
            .into_iter()
            .map(|(start, last)| WindowSpan::new(start, last + gap))
            .collect()
    }

    /// Number of currently open sessions.
    pub fn open_sessions(&self) -> usize {
        self.sessions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tumbling_assignment() {
        let a = WindowAssigner::Tumbling { len: 1000 };
        assert_eq!(a.assign(0), vec![WindowSpan::new(0, 1000)]);
        assert_eq!(a.assign(999), vec![WindowSpan::new(0, 1000)]);
        assert_eq!(a.assign(1000), vec![WindowSpan::new(1000, 2000)]);
        assert_eq!(a.windows_per_event(), 1);
    }

    #[test]
    fn sliding_assignment_overlap() {
        let a = WindowAssigner::Sliding {
            len: 1000,
            slide: 250,
        };
        let spans = a.assign(1100);
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0], WindowSpan::new(250, 1250));
        assert_eq!(spans[3], WindowSpan::new(1000, 2000));
        for s in &spans {
            assert!(s.contains(1100));
        }
        assert_eq!(a.windows_per_event(), 4);
    }

    #[test]
    fn sliding_near_time_zero_truncates() {
        let a = WindowAssigner::Sliding {
            len: 1000,
            slide: 250,
        };
        let spans = a.assign(100);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0], WindowSpan::new(0, 1000));
    }

    #[test]
    fn tumbling_equals_sliding_with_equal_slide() {
        let t = WindowAssigner::Tumbling { len: 500 };
        let s = WindowAssigner::Sliding {
            len: 500,
            slide: 500,
        };
        for ts in [0u64, 1, 499, 500, 12_345] {
            assert_eq!(t.assign(ts), s.assign(ts), "ts={ts}");
        }
    }

    #[test]
    fn sliding_uneven_slide() {
        let a = WindowAssigner::Sliding {
            len: 700,
            slide: 300,
        };
        let spans = a.assign(900);
        // Windows starting at 300, 600, 900 contain ts=900; 0 does not (0..700).
        assert_eq!(
            spans,
            vec![
                WindowSpan::new(300, 1000),
                WindowSpan::new(600, 1300),
                WindowSpan::new(900, 1600)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "invalid sliding window")]
    fn sliding_rejects_slide_above_len() {
        let _ = WindowAssigner::Sliding {
            len: 100,
            slide: 200,
        }
        .assign(0);
    }

    #[test]
    fn span_basics() {
        let s = WindowSpan::new(10, 20);
        assert!(s.contains(10) && s.contains(19));
        assert!(!s.contains(9) && !s.contains(20));
        assert_eq!(s.len(), 10);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_span_rejected() {
        let _ = WindowSpan::new(5, 5);
    }

    #[test]
    fn sessions_extend_within_gap() {
        let mut t = SessionTracker::new(100);
        let s1 = t.observe(1000);
        assert_eq!(s1, WindowSpan::new(1000, 1100));
        let s2 = t.observe(1050);
        assert_eq!(s2, WindowSpan::new(1000, 1150));
        assert_eq!(t.open_sessions(), 1);
    }

    #[test]
    fn sessions_split_beyond_gap() {
        let mut t = SessionTracker::new(100);
        t.observe(1000);
        t.observe(2000);
        assert_eq!(t.open_sessions(), 2);
    }

    #[test]
    fn bridging_event_merges_sessions() {
        let mut t = SessionTracker::new(100);
        t.observe(1000);
        t.observe(1150);
        assert_eq!(t.open_sessions(), 2);
        let merged = t.observe(1090); // within gap of both sessions
        assert_eq!(merged, WindowSpan::new(1000, 1250));
        assert_eq!(t.open_sessions(), 1);
    }

    #[test]
    fn expired_sessions_close() {
        let mut t = SessionTracker::new(100);
        t.observe(1000);
        t.observe(5000);
        let closed = t.close_expired(2000);
        assert_eq!(closed, vec![WindowSpan::new(1000, 1100)]);
        assert_eq!(t.open_sessions(), 1);
        assert!(t.close_expired(2000).is_empty());
    }

    #[test]
    fn out_of_order_event_joins_earlier_session() {
        let mut t = SessionTracker::new(100);
        t.observe(1000);
        let s = t.observe(950); // late but within gap
        assert_eq!(s, WindowSpan::new(950, 1100));
        assert_eq!(t.open_sessions(), 1);
    }
}
