//! Scotty-style stream slicing (Traub et al., "Scotty: General and
//! Efficient Open-source Window Aggregation", TODS 2021).
//!
//! For overlapping (sliding) windows, aggregating every window independently
//! lifts each event `len/slide` times. Stream slicing instead partitions the
//! stream into non-overlapping *slices* whose boundaries are the union of
//! all window starts and ends; each event is lifted into exactly one slice
//! accumulator, and a window trigger merely `combine`s the accumulators of
//! the slices it spans. For decomposable aggregates this turns per-event
//! cost from `O(len/slide)` into `O(1)` — and for *non-decomposable*
//! aggregates the "accumulator" is the event set itself, which is why this
//! trick alone cannot fix quantiles in a decentralized setting (the slices
//! still hold raw events that must travel). That asymmetry is the gap Dema
//! fills.

use std::collections::BTreeMap;

use dema_core::event::Event;

use crate::aggregate::Aggregate;
use crate::assigner::{WindowAssigner, WindowSpan};

/// A slicing window operator for aligned (tumbling/sliding) windows.
#[derive(Debug)]
pub struct StreamSlicer<A: Aggregate> {
    assigner: WindowAssigner,
    agg: A,
    /// Slice start → (slice end, accumulator).
    slices: BTreeMap<u64, (u64, A::Acc)>,
    /// End time of the next window to trigger.
    next_window_end: u64,
    watermark: u64,
    late_events: u64,
    lifts: u64,
    combines: u64,
}

impl<A: Aggregate> StreamSlicer<A> {
    /// Create a slicer.
    pub fn new(assigner: WindowAssigner, agg: A) -> StreamSlicer<A> {
        let first_end = match assigner {
            WindowAssigner::Tumbling { len } => len,
            WindowAssigner::Sliding { len, .. } => len,
        };
        StreamSlicer {
            assigner,
            agg,
            slices: BTreeMap::new(),
            next_window_end: first_end,
            watermark: 0,
            late_events: 0,
            lifts: 0,
            combines: 0,
        }
    }

    /// `(len, slide)` of the assigner (tumbling ⇒ slide = len).
    fn geometry(&self) -> (u64, u64) {
        match self.assigner {
            WindowAssigner::Tumbling { len } => (len, len),
            WindowAssigner::Sliding { len, slide } => (len, slide),
        }
    }

    /// Largest slice boundary `<= ts` and smallest `> ts`.
    fn slice_span(&self, ts: u64) -> (u64, u64) {
        let (len, slide) = self.geometry();
        // Boundary family A: window starts, multiples of `slide`.
        let prev_a = ts / slide * slide;
        let next_a = prev_a + slide;
        // Boundary family B: window ends, ≡ len (mod slide).
        let rem = len % slide;
        let (prev_b, next_b) = if ts >= rem {
            let p = (ts - rem) / slide * slide + rem;
            (Some(p), p + slide)
        } else {
            (None, rem)
        };
        let start = match prev_b {
            Some(b) => prev_a.max(b),
            None => prev_a,
        };
        let end = next_a.min(next_b);
        (start, end)
    }

    /// Events lifted so far (exactly one lift per on-time event).
    pub fn lifts(&self) -> u64 {
        self.lifts
    }

    /// Accumulator combinations performed by window triggers.
    pub fn combines(&self) -> u64 {
        self.combines
    }

    /// Late (behind-watermark) events dropped.
    pub fn late_events(&self) -> u64 {
        self.late_events
    }

    /// Currently held slices.
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Ingest one event into its slice. Returns `false` if dropped as late.
    pub fn ingest(&mut self, event: &Event) -> bool {
        if event.ts < self.watermark {
            self.late_events += 1;
            return false;
        }
        let (start, end) = self.slice_span(event.ts);
        let agg = &self.agg;
        let (_, acc) = self
            .slices
            .entry(start)
            .or_insert_with(|| (end, agg.identity()));
        self.agg.lift(acc, event);
        self.lifts += 1;
        true
    }

    /// Advance the watermark; trigger every window whose end has passed.
    /// Returns `(span, output)` pairs in trigger order.
    pub fn advance_watermark(&mut self, watermark: u64) -> Vec<(WindowSpan, Option<A::Out>)> {
        self.watermark = self.watermark.max(watermark);
        let (len, slide) = self.geometry();
        let mut out = Vec::new();
        while self.next_window_end <= self.watermark {
            let end = self.next_window_end;
            let start = end - len;
            let mut acc = self.agg.identity();
            for (_, (_, slice_acc)) in self.slices.range(start..end) {
                acc = self.agg.combine(acc, slice_acc);
                self.combines += 1;
            }
            out.push((WindowSpan::new(start, end), self.agg.lower(&acc)));
            self.next_window_end += slide;
            // Evict slices no future window can need: the oldest live window
            // starts at next_window_end - len.
            let horizon = self.next_window_end - len;
            while let Some(entry) = self.slices.first_entry() {
                if entry.get().0 <= horizon {
                    entry.remove();
                } else {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{Count, Max, QuantileAgg, Sum};
    use crate::operator::WindowOperator;

    fn ev(v: i64, ts: u64) -> Event {
        Event::new(v, ts, ts)
    }

    #[test]
    fn tumbling_sum_matches_naive() {
        let mut s = StreamSlicer::new(WindowAssigner::Tumbling { len: 1000 }, Sum);
        for i in 0..3000u64 {
            s.ingest(&ev(1, i));
        }
        let results = s.advance_watermark(3000);
        assert_eq!(results.len(), 3);
        for (span, sum) in results {
            assert_eq!(sum, Some(1000), "window {span:?}");
        }
    }

    #[test]
    fn sliding_windows_share_slices() {
        // len 1000, slide 250: each event belongs to 4 windows but must be
        // lifted exactly once.
        let mut s = StreamSlicer::new(
            WindowAssigner::Sliding {
                len: 1000,
                slide: 250,
            },
            Count,
        );
        for i in 0..2000u64 {
            s.ingest(&ev(1, i));
        }
        assert_eq!(s.lifts(), 2000);
        let results = s.advance_watermark(2000);
        // Windows ending at 1000, 1250, 1500, 1750, 2000.
        assert_eq!(results.len(), 5);
        for (span, count) in &results {
            assert_eq!(*count, Some(span.len()), "{span:?}");
        }
    }

    #[test]
    fn sliding_results_match_unshared_operator() {
        let assigner = WindowAssigner::Sliding {
            len: 600,
            slide: 200,
        };
        let mut sliced = StreamSlicer::new(assigner, Sum);
        let mut naive = WindowOperator::new(assigner, Sum);
        let events: Vec<Event> = (0..1500u64)
            .map(|i| ev((i as i64 * 7) % 100 - 50, (i * 13) % 2400))
            .collect();
        for e in &events {
            sliced.ingest(e);
            naive.ingest(e);
        }
        let a = sliced.advance_watermark(2400);
        let b = naive.advance_watermark(2400);
        assert_eq!(a, b);
        // Sharing: the slicer lifts each event once; the naive operator up
        // to len/slide = 3 times (fewer near t = 0, where early events fall
        // into fewer windows).
        assert_eq!(sliced.lifts(), 1500);
        assert!(naive.lifts() > sliced.lifts() * 2);
        assert!(naive.lifts() <= sliced.lifts() * 3);
    }

    #[test]
    fn uneven_slide_boundaries() {
        // len 700, slide 300 → boundaries at 0,100(=700%300),300,400,600,700,...
        let s = StreamSlicer::new(
            WindowAssigner::Sliding {
                len: 700,
                slide: 300,
            },
            Count,
        );
        assert_eq!(s.slice_span(0), (0, 100));
        assert_eq!(s.slice_span(99), (0, 100));
        assert_eq!(s.slice_span(100), (100, 300));
        assert_eq!(s.slice_span(350), (300, 400));
        assert_eq!(s.slice_span(650), (600, 700));
        assert_eq!(s.slice_span(700), (700, 900));
    }

    #[test]
    fn uneven_slide_results_match_naive() {
        let assigner = WindowAssigner::Sliding {
            len: 700,
            slide: 300,
        };
        let mut sliced = StreamSlicer::new(assigner, Max);
        let mut naive = WindowOperator::new(assigner, Max);
        for i in 0..900u64 {
            let e = ev((i as i64 * 31) % 500, (i * 11) % 3000);
            sliced.ingest(&e);
            naive.ingest(&e);
        }
        assert_eq!(
            sliced.advance_watermark(3000),
            naive.advance_watermark(3000)
        );
    }

    #[test]
    fn late_events_dropped() {
        let mut s = StreamSlicer::new(WindowAssigner::Tumbling { len: 100 }, Count);
        s.advance_watermark(500);
        assert!(!s.ingest(&ev(1, 499)));
        assert!(s.ingest(&ev(1, 500)));
        assert_eq!(s.late_events(), 1);
    }

    #[test]
    fn slices_are_evicted_after_use() {
        let mut s = StreamSlicer::new(
            WindowAssigner::Sliding {
                len: 1000,
                slide: 500,
            },
            Count,
        );
        for i in 0..10_000u64 {
            s.ingest(&ev(1, i));
        }
        s.advance_watermark(10_000);
        // Only slices a still-open window may need remain.
        assert!(s.slice_count() <= 4, "{} slices retained", s.slice_count());
    }

    #[test]
    fn empty_windows_trigger_with_identity() {
        let mut s = StreamSlicer::new(WindowAssigner::Tumbling { len: 100 }, Sum);
        s.ingest(&ev(5, 250));
        let results = s.advance_watermark(400);
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].1, Some(0)); // [0,100): empty
        assert_eq!(results[2].1, Some(5)); // [200,300)
    }

    #[test]
    fn holistic_aggregate_works_but_buffers_everything() {
        // Slicing still *computes* quantiles correctly on one node — the
        // point is the accumulators are O(events), so offloading them over a
        // network ships all raw data (the paper's motivation).
        let mut s = StreamSlicer::new(
            WindowAssigner::Sliding {
                len: 400,
                slide: 200,
            },
            QuantileAgg::median(),
        );
        for i in 0..400u64 {
            s.ingest(&ev(i as i64, i));
        }
        let results = s.advance_watermark(400);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].1, Some(199)); // median of 0..400 at rank 200
    }

    #[test]
    fn watermark_is_monotone() {
        let mut s = StreamSlicer::new(WindowAssigner::Tumbling { len: 100 }, Count);
        s.advance_watermark(1000);
        let again = s.advance_watermark(500); // regression ignored
        assert!(again.is_empty());
        assert!(!s.ingest(&ev(1, 999)));
    }
}
