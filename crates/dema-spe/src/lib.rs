#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # dema-spe
//!
//! A compact stream-processing substrate: the window and aggregation
//! machinery the Dema paper's setting assumes (§2), and the slicing engine
//! its Scotty baseline is built on.
//!
//! * [`assigner`] — the Dataflow-model window types: tumbling, sliding, and
//!   session windows over event time.
//! * [`aggregate`] — aggregate functions classified per Jesus et al.:
//!   self-decomposable (sum/count/max/min), decomposable (avg/variance/
//!   range), and non-decomposable/holistic (median/quantile/distinct count),
//!   expressed as lift / combine / lower algebras.
//! * [`slicing`] — Scotty-style *stream slicing*: events land in
//!   non-overlapping slices whose partial aggregates are shared by every
//!   concurrent window, which is what makes sliding windows cheap for
//!   decomposable functions — and precisely what breaks for quantiles,
//!   motivating Dema.
//! * [`operator`] — a window operator tying assigner + aggregate + watermark
//!   into an ingest/trigger loop.

pub mod aggregate;
pub mod assigner;
pub mod operator;
pub mod session;
pub mod slicing;

pub use aggregate::{Aggregate, AggregateKind};
pub use assigner::{WindowAssigner, WindowSpan};
pub use operator::WindowOperator;
pub use session::SessionOperator;
