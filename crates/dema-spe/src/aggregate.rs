//! Aggregate functions as lift / combine / lower algebras, classified per
//! Jesus et al. (§2.2):
//!
//! * **self-decomposable** — the partial result *is* the output type and
//!   combines directly (sum, count, max, min);
//! * **decomposable** — a small fixed-size accumulator combines, a final
//!   `lower` derives the output (average, variance, range);
//! * **non-decomposable / holistic** — the accumulator must retain all
//!   events (median, quantile, distinct count): partial results cannot be
//!   merged without the full dataset, which is the entire reason Dema
//!   exists.
//!
//! The trait is deliberately the shape window slicing needs: slices hold
//! accumulators (`lift` + `combine`), window triggers `combine` slice
//! accumulators and `lower` once.

use dema_core::event::Event;
use dema_core::quantile::Quantile;

/// The Jesus-et-al. classification of an aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateKind {
    /// Partial output merges into final output directly.
    SelfDecomposable,
    /// Constant-size accumulator, final lowering step.
    Decomposable,
    /// Accumulator must hold the full dataset.
    NonDecomposable,
}

/// An aggregate function over event values.
pub trait Aggregate {
    /// Partial-aggregation state.
    type Acc: Clone;
    /// Final output.
    type Out;

    /// Classification (drives what the slicing engine may share).
    fn kind(&self) -> AggregateKind;

    /// The empty accumulator.
    fn identity(&self) -> Self::Acc;

    /// Fold one event into an accumulator.
    fn lift(&self, acc: &mut Self::Acc, event: &Event);

    /// Merge two accumulators.
    fn combine(&self, a: Self::Acc, b: &Self::Acc) -> Self::Acc;

    /// Produce the final output (`None` for an empty window where the
    /// aggregate is undefined, e.g. max or median of nothing).
    fn lower(&self, acc: &Self::Acc) -> Option<Self::Out>;
}

/// Σ value.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sum;

impl Aggregate for Sum {
    type Acc = i128;
    type Out = i128;
    fn kind(&self) -> AggregateKind {
        AggregateKind::SelfDecomposable
    }
    fn identity(&self) -> i128 {
        0
    }
    fn lift(&self, acc: &mut i128, event: &Event) {
        *acc += event.value as i128;
    }
    fn combine(&self, a: i128, b: &i128) -> i128 {
        a + b
    }
    fn lower(&self, acc: &i128) -> Option<i128> {
        Some(*acc)
    }
}

/// Number of events.
#[derive(Debug, Clone, Copy, Default)]
pub struct Count;

impl Aggregate for Count {
    type Acc = u64;
    type Out = u64;
    fn kind(&self) -> AggregateKind {
        AggregateKind::SelfDecomposable
    }
    fn identity(&self) -> u64 {
        0
    }
    fn lift(&self, acc: &mut u64, _event: &Event) {
        *acc += 1;
    }
    fn combine(&self, a: u64, b: &u64) -> u64 {
        a + b
    }
    fn lower(&self, acc: &u64) -> Option<u64> {
        Some(*acc)
    }
}

/// Largest value.
#[derive(Debug, Clone, Copy, Default)]
pub struct Max;

impl Aggregate for Max {
    type Acc = Option<i64>;
    type Out = i64;
    fn kind(&self) -> AggregateKind {
        AggregateKind::SelfDecomposable
    }
    fn identity(&self) -> Option<i64> {
        None
    }
    fn lift(&self, acc: &mut Option<i64>, event: &Event) {
        *acc = Some(acc.map_or(event.value, |m| m.max(event.value)));
    }
    fn combine(&self, a: Option<i64>, b: &Option<i64>) -> Option<i64> {
        match (a, b) {
            (Some(x), Some(y)) => Some(x.max(*y)),
            (x, y) => x.or(*y),
        }
    }
    fn lower(&self, acc: &Option<i64>) -> Option<i64> {
        *acc
    }
}

/// Smallest value.
#[derive(Debug, Clone, Copy, Default)]
pub struct Min;

impl Aggregate for Min {
    type Acc = Option<i64>;
    type Out = i64;
    fn kind(&self) -> AggregateKind {
        AggregateKind::SelfDecomposable
    }
    fn identity(&self) -> Option<i64> {
        None
    }
    fn lift(&self, acc: &mut Option<i64>, event: &Event) {
        *acc = Some(acc.map_or(event.value, |m| m.min(event.value)));
    }
    fn combine(&self, a: Option<i64>, b: &Option<i64>) -> Option<i64> {
        match (a, b) {
            (Some(x), Some(y)) => Some(x.min(*y)),
            (x, y) => x.or(*y),
        }
    }
    fn lower(&self, acc: &Option<i64>) -> Option<i64> {
        *acc
    }
}

/// Arithmetic mean (decomposable: sum + count).
#[derive(Debug, Clone, Copy, Default)]
pub struct Average;

impl Aggregate for Average {
    type Acc = (i128, u64);
    type Out = f64;
    fn kind(&self) -> AggregateKind {
        AggregateKind::Decomposable
    }
    fn identity(&self) -> (i128, u64) {
        (0, 0)
    }
    fn lift(&self, acc: &mut (i128, u64), event: &Event) {
        acc.0 += event.value as i128;
        acc.1 += 1;
    }
    fn combine(&self, a: (i128, u64), b: &(i128, u64)) -> (i128, u64) {
        (a.0 + b.0, a.1 + b.1)
    }
    fn lower(&self, acc: &(i128, u64)) -> Option<f64> {
        (acc.1 > 0).then(|| acc.0 as f64 / acc.1 as f64)
    }
}

/// Population variance via the parallel (Chan et al.) combination rule.
#[derive(Debug, Clone, Copy, Default)]
pub struct Variance;

/// Accumulator for [`Variance`]: count, mean, M2.
#[derive(Debug, Clone, Copy, Default)]
pub struct VarAcc {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Aggregate for Variance {
    type Acc = VarAcc;
    type Out = f64;
    fn kind(&self) -> AggregateKind {
        AggregateKind::Decomposable
    }
    fn identity(&self) -> VarAcc {
        VarAcc::default()
    }
    fn lift(&self, acc: &mut VarAcc, event: &Event) {
        // Welford's online update.
        acc.n += 1;
        let x = event.value as f64;
        let delta = x - acc.mean;
        acc.mean += delta / acc.n as f64;
        acc.m2 += delta * (x - acc.mean);
    }
    fn combine(&self, a: VarAcc, b: &VarAcc) -> VarAcc {
        if a.n == 0 {
            return *b;
        }
        if b.n == 0 {
            return a;
        }
        let n = a.n + b.n;
        let delta = b.mean - a.mean;
        let mean = a.mean + delta * b.n as f64 / n as f64;
        let m2 = a.m2 + b.m2 + delta * delta * a.n as f64 * b.n as f64 / n as f64;
        VarAcc { n, mean, m2 }
    }
    fn lower(&self, acc: &VarAcc) -> Option<f64> {
        (acc.n > 0).then(|| acc.m2 / acc.n as f64)
    }
}

/// max − min (decomposable from two self-decomposable parts).
#[derive(Debug, Clone, Copy, Default)]
pub struct Range;

impl Aggregate for Range {
    type Acc = Option<(i64, i64)>;
    type Out = i64;
    fn kind(&self) -> AggregateKind {
        AggregateKind::Decomposable
    }
    fn identity(&self) -> Option<(i64, i64)> {
        None
    }
    fn lift(&self, acc: &mut Option<(i64, i64)>, event: &Event) {
        let v = event.value;
        *acc = Some(acc.map_or((v, v), |(lo, hi)| (lo.min(v), hi.max(v))));
    }
    fn combine(&self, a: Option<(i64, i64)>, b: &Option<(i64, i64)>) -> Option<(i64, i64)> {
        match (a, *b) {
            (Some((al, ah)), Some((bl, bh))) => Some((al.min(bl), ah.max(bh))),
            (x, y) => x.or(y),
        }
    }
    fn lower(&self, acc: &Option<(i64, i64)>) -> Option<i64> {
        acc.map(|(lo, hi)| hi - lo)
    }
}

/// Exact quantile — holistic: the accumulator keeps every value.
#[derive(Debug, Clone, Copy)]
pub struct QuantileAgg {
    /// Which quantile to report.
    pub q: Quantile,
}

impl QuantileAgg {
    /// The median aggregate.
    pub fn median() -> QuantileAgg {
        QuantileAgg {
            q: Quantile::MEDIAN,
        }
    }
}

impl Aggregate for QuantileAgg {
    type Acc = Vec<i64>;
    type Out = i64;
    fn kind(&self) -> AggregateKind {
        AggregateKind::NonDecomposable
    }
    fn identity(&self) -> Vec<i64> {
        Vec::new()
    }
    fn lift(&self, acc: &mut Vec<i64>, event: &Event) {
        acc.push(event.value);
    }
    fn combine(&self, mut a: Vec<i64>, b: &Vec<i64>) -> Vec<i64> {
        a.extend_from_slice(b);
        a
    }
    fn lower(&self, acc: &Vec<i64>) -> Option<i64> {
        if acc.is_empty() {
            return None;
        }
        let mut sorted = acc.clone();
        sorted.sort_unstable();
        let pos = self.q.pos(sorted.len() as u64).expect("non-empty");
        Some(sorted[(pos - 1) as usize])
    }
}

/// Most frequent value (smallest wins ties) — holistic.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mode;

impl Aggregate for Mode {
    type Acc = std::collections::BTreeMap<i64, u64>;
    type Out = i64;
    fn kind(&self) -> AggregateKind {
        AggregateKind::NonDecomposable
    }
    fn identity(&self) -> Self::Acc {
        std::collections::BTreeMap::new()
    }
    fn lift(&self, acc: &mut Self::Acc, event: &Event) {
        *acc.entry(event.value).or_insert(0) += 1;
    }
    fn combine(&self, mut a: Self::Acc, b: &Self::Acc) -> Self::Acc {
        for (&v, &c) in b {
            *a.entry(v).or_insert(0) += c;
        }
        a
    }
    fn lower(&self, acc: &Self::Acc) -> Option<i64> {
        // BTreeMap iteration is ascending, so `>` keeps the smallest value
        // among equally frequent ones.
        acc.iter()
            .fold(None, |best: Option<(i64, u64)>, (&v, &c)| match best {
                Some((_, bc)) if bc >= c => best,
                _ => Some((v, c)),
            })
            .map(|(v, _)| v)
    }
}

/// Number of distinct values — holistic.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistinctCount;

impl Aggregate for DistinctCount {
    type Acc = std::collections::BTreeSet<i64>;
    type Out = u64;
    fn kind(&self) -> AggregateKind {
        AggregateKind::NonDecomposable
    }
    fn identity(&self) -> Self::Acc {
        std::collections::BTreeSet::new()
    }
    fn lift(&self, acc: &mut Self::Acc, event: &Event) {
        acc.insert(event.value);
    }
    fn combine(&self, mut a: Self::Acc, b: &Self::Acc) -> Self::Acc {
        a.extend(b.iter().copied());
        a
    }
    fn lower(&self, acc: &Self::Acc) -> Option<u64> {
        Some(acc.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(vals: &[i64]) -> Vec<Event> {
        vals.iter()
            .enumerate()
            .map(|(i, &v)| Event::new(v, i as u64, i as u64))
            .collect()
    }

    /// Fold the full set, and fold split halves + combine; both must agree
    /// for (self-)decomposable aggregates.
    fn check_decomposable<A: Aggregate>(agg: &A, vals: &[i64]) -> Option<A::Out>
    where
        A::Out: PartialEq + std::fmt::Debug,
    {
        let evs = events(vals);
        let mut whole = agg.identity();
        for e in &evs {
            agg.lift(&mut whole, e);
        }
        let (l, r) = evs.split_at(evs.len() / 2);
        let mut left = agg.identity();
        for e in l {
            agg.lift(&mut left, e);
        }
        let mut right = agg.identity();
        for e in r {
            agg.lift(&mut right, e);
        }
        let combined = agg.combine(left, &right);
        let a = agg.lower(&whole);
        let b = agg.lower(&combined);
        match (&a, &b) {
            (Some(_), Some(_)) | (None, None) => {}
            _ => panic!("whole={a:?} combined={b:?}"),
        }
        a
    }

    #[test]
    fn sum_count_max_min() {
        let vals = [3i64, -1, 4, 1, -5, 9, 2, 6];
        assert_eq!(check_decomposable(&Sum, &vals), Some(19));
        assert_eq!(check_decomposable(&Count, &vals), Some(8));
        assert_eq!(check_decomposable(&Max, &vals), Some(9));
        assert_eq!(check_decomposable(&Min, &vals), Some(-5));
    }

    #[test]
    fn average_decomposes() {
        let vals = [10i64, 20, 30, 40, 50];
        let avg = check_decomposable(&Average, &vals).unwrap();
        assert_eq!(avg, 30.0);
    }

    #[test]
    fn variance_decomposes_and_matches_direct() {
        let vals = [2i64, 4, 4, 4, 5, 5, 7, 9];
        let var = check_decomposable(&Variance, &vals).unwrap();
        assert!((var - 4.0).abs() < 1e-9, "variance {var}");
        // Also check the split-combine equality numerically.
        let evs = events(&vals);
        let (l, r) = evs.split_at(3);
        let mut a = Variance.identity();
        l.iter().for_each(|e| Variance.lift(&mut a, e));
        let mut b = Variance.identity();
        r.iter().for_each(|e| Variance.lift(&mut b, e));
        let c = Variance.combine(a, &b);
        assert!((Variance.lower(&c).unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn range_decomposes() {
        let vals = [5i64, -3, 12, 0];
        assert_eq!(check_decomposable(&Range, &vals), Some(15));
    }

    #[test]
    fn empty_windows_are_none_where_undefined() {
        assert_eq!(Max.lower(&Max.identity()), None);
        assert_eq!(Min.lower(&Min.identity()), None);
        assert_eq!(Average.lower(&Average.identity()), None);
        assert_eq!(Variance.lower(&Variance.identity()), None);
        assert_eq!(QuantileAgg::median().lower(&vec![]), None);
        // ... but defined-at-empty aggregates return their identity.
        assert_eq!(Sum.lower(&0), Some(0));
        assert_eq!(Count.lower(&0), Some(0));
        assert_eq!(DistinctCount.lower(&DistinctCount.identity()), Some(0));
    }

    #[test]
    fn median_is_exact() {
        let agg = QuantileAgg::median();
        let mut acc = agg.identity();
        for e in events(&[5, 1, 9, 3, 7]) {
            agg.lift(&mut acc, &e);
        }
        assert_eq!(agg.lower(&acc), Some(5));
    }

    #[test]
    fn quantile_combine_concatenates() {
        let agg = QuantileAgg { q: Quantile::P25 };
        let a = vec![1, 2, 3, 4];
        let b = vec![5, 6, 7, 8];
        let c = agg.combine(a, &b);
        assert_eq!(agg.lower(&c), Some(2)); // rank 2 of 8
    }

    #[test]
    fn distinct_count_across_partials() {
        let agg = DistinctCount;
        let mut a = agg.identity();
        for e in events(&[1, 1, 2, 3]) {
            agg.lift(&mut a, &e);
        }
        let mut b = agg.identity();
        for e in events(&[3, 4, 4]) {
            agg.lift(&mut b, &e);
        }
        let c = agg.combine(a, &b);
        assert_eq!(agg.lower(&c), Some(4));
    }

    #[test]
    fn mode_picks_most_frequent() {
        let agg = Mode;
        let mut acc = agg.identity();
        for e in events(&[3, 1, 3, 2, 3, 2]) {
            agg.lift(&mut acc, &e);
        }
        assert_eq!(agg.lower(&acc), Some(3));
        assert_eq!(agg.lower(&agg.identity()), None);
    }

    #[test]
    fn mode_tie_breaks_to_smallest_value() {
        let agg = Mode;
        let mut acc = agg.identity();
        for e in events(&[5, 2, 5, 2]) {
            agg.lift(&mut acc, &e);
        }
        assert_eq!(agg.lower(&acc), Some(2));
    }

    #[test]
    fn mode_combines_partial_counts() {
        let agg = Mode;
        let mut a = agg.identity();
        for e in events(&[1, 1, 2]) {
            agg.lift(&mut a, &e);
        }
        let mut b = agg.identity();
        for e in events(&[2, 2, 1]) {
            agg.lift(&mut b, &e);
        }
        // combined: 1×3, 2×3 → tie → smallest = 1
        assert_eq!(agg.lower(&agg.combine(a, &b)), Some(1));
    }

    #[test]
    fn kinds_match_the_taxonomy() {
        assert_eq!(Sum.kind(), AggregateKind::SelfDecomposable);
        assert_eq!(Count.kind(), AggregateKind::SelfDecomposable);
        assert_eq!(Max.kind(), AggregateKind::SelfDecomposable);
        assert_eq!(Min.kind(), AggregateKind::SelfDecomposable);
        assert_eq!(Average.kind(), AggregateKind::Decomposable);
        assert_eq!(Variance.kind(), AggregateKind::Decomposable);
        assert_eq!(Range.kind(), AggregateKind::Decomposable);
        assert_eq!(QuantileAgg::median().kind(), AggregateKind::NonDecomposable);
        assert_eq!(DistinctCount.kind(), AggregateKind::NonDecomposable);
        assert_eq!(Mode.kind(), AggregateKind::NonDecomposable);
    }

    #[test]
    fn median_of_medians_is_not_the_median() {
        // The motivating counterexample for the whole paper: combining
        // partial medians gives the wrong answer; combining full
        // accumulators (what QuantileAgg does) gives the right one.
        let agg = QuantileAgg::median();
        let left = [1i64, 1, 1, 1, 1];
        let right = [9i64, 9, 9];
        let ml = agg.lower(&left.to_vec()).unwrap(); // 1
        let mr = agg.lower(&right.to_vec()).unwrap(); // 9
        let median_of_medians = (ml + mr) / 2; // 5 — not even present in the data
        let mut acc = left.to_vec();
        acc.extend_from_slice(&right);
        let truth = agg.lower(&acc).unwrap(); // rank 4 of [1×5, 9×3] = 1
        assert_eq!(truth, 1);
        assert_ne!(median_of_medians, truth);
    }
}
