//! A plain (unshared) window operator: every event is lifted into the
//! accumulator of *each* window that contains it.
//!
//! This is the correctness reference for [`crate::slicing::StreamSlicer`]
//! and the right tool for holistic aggregates on a single node, where
//! sharing buys nothing (the accumulator is the data).

use std::collections::BTreeMap;

use dema_core::event::Event;

use crate::aggregate::Aggregate;
use crate::assigner::{WindowAssigner, WindowSpan};

/// Buffer-per-window operator over aligned windows.
#[derive(Debug)]
pub struct WindowOperator<A: Aggregate> {
    assigner: WindowAssigner,
    agg: A,
    open: BTreeMap<WindowSpan, A::Acc>,
    /// End of the next window to trigger (windows trigger in end order).
    next_window_end: u64,
    watermark: u64,
    late_events: u64,
    lifts: u64,
}

impl<A: Aggregate> WindowOperator<A> {
    /// Create an operator.
    pub fn new(assigner: WindowAssigner, agg: A) -> WindowOperator<A> {
        let first_end = match assigner {
            WindowAssigner::Tumbling { len } => len,
            WindowAssigner::Sliding { len, .. } => len,
        };
        WindowOperator {
            assigner,
            agg,
            open: BTreeMap::new(),
            next_window_end: first_end,
            watermark: 0,
            late_events: 0,
            lifts: 0,
        }
    }

    /// Events lifted so far (= Σ windows-per-event over ingested events).
    pub fn lifts(&self) -> u64 {
        self.lifts
    }

    /// Late events dropped.
    pub fn late_events(&self) -> u64 {
        self.late_events
    }

    /// Currently open windows.
    pub fn open_windows(&self) -> usize {
        self.open.len()
    }

    /// Ingest one event into all windows containing it. Returns `false` if
    /// dropped as late.
    pub fn ingest(&mut self, event: &Event) -> bool {
        if event.ts < self.watermark {
            self.late_events += 1;
            return false;
        }
        for span in self.assigner.assign(event.ts) {
            let agg = &self.agg;
            let acc = self.open.entry(span).or_insert_with(|| agg.identity());
            self.agg.lift(acc, event);
            self.lifts += 1;
        }
        true
    }

    /// Advance the watermark; trigger every window whose end has passed, in
    /// end order, including empty ones.
    pub fn advance_watermark(&mut self, watermark: u64) -> Vec<(WindowSpan, Option<A::Out>)> {
        self.watermark = self.watermark.max(watermark);
        let (len, slide) = match self.assigner {
            WindowAssigner::Tumbling { len } => (len, len),
            WindowAssigner::Sliding { len, slide } => (len, slide),
        };
        let mut out = Vec::new();
        while self.next_window_end <= self.watermark {
            let span = WindowSpan::new(self.next_window_end - len, self.next_window_end);
            let acc = self
                .open
                .remove(&span)
                .unwrap_or_else(|| self.agg.identity());
            out.push((span, self.agg.lower(&acc)));
            self.next_window_end += slide;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{Average, Count, QuantileAgg, Sum};

    fn ev(v: i64, ts: u64) -> Event {
        Event::new(v, ts, ts)
    }

    #[test]
    fn tumbling_median_per_window() {
        let mut op = WindowOperator::new(
            WindowAssigner::Tumbling { len: 1000 },
            QuantileAgg::median(),
        );
        for i in 0..100 {
            op.ingest(&ev(i, 100 + i as u64)); // window 0
            op.ingest(&ev(1000 - i, 1100 + i as u64)); // window 1
        }
        let results = op.advance_watermark(2000);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].1, Some(49)); // median of 0..100 = rank 50
        assert_eq!(results[1].1, Some(950)); // median of 901..=1000 = rank 50
    }

    #[test]
    fn sliding_lifts_each_event_into_every_window() {
        let mut op = WindowOperator::new(
            WindowAssigner::Sliding {
                len: 400,
                slide: 100,
            },
            Count,
        );
        op.ingest(&ev(1, 450));
        assert_eq!(op.lifts(), 4);
        assert_eq!(op.open_windows(), 4);
    }

    #[test]
    fn windows_trigger_in_end_order_including_empty() {
        let mut op = WindowOperator::new(WindowAssigner::Tumbling { len: 100 }, Sum);
        op.ingest(&ev(7, 350));
        let results = op.advance_watermark(500);
        let ends: Vec<u64> = results.iter().map(|(s, _)| s.end).collect();
        assert_eq!(ends, vec![100, 200, 300, 400, 500]);
        assert_eq!(results[3].1, Some(7));
        assert_eq!(results[0].1, Some(0));
    }

    #[test]
    fn late_events_counted_and_dropped() {
        let mut op = WindowOperator::new(WindowAssigner::Tumbling { len: 100 }, Count);
        op.advance_watermark(200);
        assert!(!op.ingest(&ev(1, 150)));
        assert_eq!(op.late_events(), 1);
    }

    #[test]
    fn average_over_sliding_windows() {
        let mut op = WindowOperator::new(
            WindowAssigner::Sliding {
                len: 200,
                slide: 100,
            },
            Average,
        );
        op.ingest(&ev(10, 50));
        op.ingest(&ev(20, 150));
        op.ingest(&ev(60, 250));
        let results = op.advance_watermark(400);
        // [0,200): 10,20 → 15; [100,300): 20,60 → 40; [200,400): 60
        let by_start: std::collections::HashMap<u64, Option<f64>> =
            results.into_iter().map(|(s, v)| (s.start, v)).collect();
        assert_eq!(by_start[&0], Some(15.0));
        assert_eq!(by_start[&100], Some(40.0));
        assert_eq!(by_start[&200], Some(60.0));
    }

    #[test]
    fn no_windows_before_watermark() {
        let mut op = WindowOperator::new(WindowAssigner::Tumbling { len: 100 }, Count);
        op.ingest(&ev(1, 50));
        assert!(op.advance_watermark(99).is_empty());
        assert_eq!(op.advance_watermark(100).len(), 1);
    }
}
