//! Session-window operator: data-driven windows over an inactivity gap,
//! combined with any aggregate.
//!
//! Unlike the aligned operators, sessions are stateful per *window*: an
//! event may extend a session or merge several; accumulators of merged
//! sessions are combined (which is only cheap for decomposable aggregates —
//! yet another place where holistic functions force the accumulator to be
//! the data).

use dema_core::event::Event;

use crate::aggregate::Aggregate;
use crate::assigner::WindowSpan;

/// A session-window operator with inactivity gap `gap` ms.
#[derive(Debug)]
pub struct SessionOperator<A: Aggregate> {
    gap: u64,
    agg: A,
    /// Open sessions: (start, last event ts, accumulator), sorted by start.
    sessions: Vec<(u64, u64, A::Acc)>,
    watermark: u64,
    late_events: u64,
}

impl<A: Aggregate> SessionOperator<A> {
    /// Create an operator with the given inactivity gap (ms, > 0).
    pub fn new(gap: u64, agg: A) -> SessionOperator<A> {
        assert!(gap > 0, "session gap must be positive");
        SessionOperator {
            gap,
            agg,
            sessions: Vec::new(),
            watermark: 0,
            late_events: 0,
        }
    }

    /// Currently open sessions.
    pub fn open_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Late events dropped so far.
    pub fn late_events(&self) -> u64 {
        self.late_events
    }

    /// Ingest one event: extend, open, or merge sessions. Returns `false`
    /// if dropped as late.
    pub fn ingest(&mut self, event: &Event) -> bool {
        if event.ts < self.watermark {
            self.late_events += 1;
            return false;
        }
        let gap = self.gap;
        // Collect sessions this event touches (within `gap` on either side).
        let mut acc = self.agg.identity();
        self.agg.lift(&mut acc, event);
        let mut start = event.ts;
        let mut last = event.ts;
        let mut kept = Vec::with_capacity(self.sessions.len() + 1);
        for (s, l, a) in self.sessions.drain(..) {
            let touches = event.ts + gap > s && event.ts < l + gap;
            if touches {
                start = start.min(s);
                last = last.max(l);
                acc = self.agg.combine(acc, &a);
            } else {
                kept.push((s, l, a));
            }
        }
        kept.push((start, last, acc));
        kept.sort_unstable_by_key(|&(s, l, _)| (s, l));
        self.sessions = kept;
        true
    }

    /// Advance the watermark and emit every session whose gap has fully
    /// elapsed, as `(span, output)` in start order.
    pub fn advance_watermark(&mut self, watermark: u64) -> Vec<(WindowSpan, Option<A::Out>)> {
        self.watermark = self.watermark.max(watermark);
        let gap = self.gap;
        let wm = self.watermark;
        let mut out = Vec::new();
        let mut kept = Vec::with_capacity(self.sessions.len());
        for (s, l, a) in self.sessions.drain(..) {
            if l + gap <= wm {
                out.push((WindowSpan::new(s, l + gap), self.agg.lower(&a)));
            } else {
                kept.push((s, l, a));
            }
        }
        self.sessions = kept;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{Count, QuantileAgg, Sum};

    fn ev(v: i64, ts: u64) -> Event {
        Event::new(v, ts, ts)
    }

    #[test]
    fn isolated_bursts_become_separate_sessions() {
        let mut op = SessionOperator::new(100, Count);
        for ts in [1000u64, 1010, 1020] {
            op.ingest(&ev(1, ts));
        }
        for ts in [5000u64, 5050] {
            op.ingest(&ev(1, ts));
        }
        assert_eq!(op.open_sessions(), 2);
        let closed = op.advance_watermark(6000);
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0], (WindowSpan::new(1000, 1120), Some(3)));
        assert_eq!(closed[1], (WindowSpan::new(5000, 5150), Some(2)));
    }

    #[test]
    fn bridging_event_merges_accumulators() {
        let mut op = SessionOperator::new(100, Sum);
        op.ingest(&ev(10, 1000));
        op.ingest(&ev(20, 1150));
        assert_eq!(op.open_sessions(), 2);
        op.ingest(&ev(5, 1090)); // bridges both sessions
        assert_eq!(op.open_sessions(), 1);
        let closed = op.advance_watermark(2000);
        assert_eq!(closed, vec![(WindowSpan::new(1000, 1250), Some(35))]);
    }

    #[test]
    fn holistic_aggregate_over_sessions() {
        let mut op = SessionOperator::new(50, QuantileAgg::median());
        for (i, v) in [9i64, 1, 5, 7, 3].into_iter().enumerate() {
            op.ingest(&ev(v, 1000 + i as u64 * 10));
        }
        let closed = op.advance_watermark(2000);
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].1, Some(5));
    }

    #[test]
    fn open_sessions_stay_open() {
        let mut op = SessionOperator::new(100, Count);
        op.ingest(&ev(1, 1000));
        let closed = op.advance_watermark(1099); // gap not yet elapsed
        assert!(closed.is_empty());
        assert_eq!(op.open_sessions(), 1);
        assert_eq!(op.advance_watermark(1100).len(), 1);
    }

    #[test]
    fn late_events_dropped() {
        let mut op = SessionOperator::new(100, Count);
        op.advance_watermark(5000);
        assert!(!op.ingest(&ev(1, 4999)));
        assert_eq!(op.late_events(), 1);
    }

    #[test]
    fn out_of_order_within_watermark_joins_session() {
        let mut op = SessionOperator::new(100, Count);
        op.ingest(&ev(1, 1000));
        op.ingest(&ev(1, 950)); // earlier but not late
        assert_eq!(op.open_sessions(), 1);
        let closed = op.advance_watermark(2000);
        assert_eq!(closed[0], (WindowSpan::new(950, 1100), Some(2)));
    }

    #[test]
    #[should_panic(expected = "session gap")]
    fn zero_gap_rejected() {
        let _ = SessionOperator::new(0, Count);
    }
}
