//! Property tests for the quantile sketches: monotonicity, merge-equals-
//! combined-stream, and error bounds under arbitrary inputs.

use proptest::collection::vec;
use proptest::prelude::*;

use dema_sketch::{KllSketch, QDigest, QuantileSketch, TDigest};

fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// t-digest quantiles are monotone in q and clamped to [min, max].
    #[test]
    fn tdigest_monotone_and_bounded(values in vec(-1e6f64..1e6, 1..2000)) {
        let mut d = TDigest::new(100.0);
        for &v in &values {
            d.insert(v);
        }
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut last = f64::NEG_INFINITY;
        for i in 1..=20 {
            let v = d.quantile(i as f64 / 20.0).unwrap();
            prop_assert!(v >= last);
            prop_assert!(v >= lo && v <= hi, "estimate {v} outside [{lo}, {hi}]");
            last = v;
        }
    }

    /// t-digest rank error stays small: the estimated median's true rank is
    /// within a few percent of n/2.
    #[test]
    fn tdigest_median_rank_error(values in vec(-1e4f64..1e4, 100..3000)) {
        let mut d = TDigest::new(200.0);
        for &v in &values {
            d.insert(v);
        }
        let est = d.quantile(0.5).unwrap();
        let below = values.iter().filter(|&&v| v <= est).count() as f64;
        let frac = below / values.len() as f64;
        prop_assert!((frac - 0.5).abs() < 0.1, "median estimate at cdf {frac}");
    }

    /// Merging t-digests is equivalent (within tolerance) to digesting the
    /// concatenated stream.
    #[test]
    fn tdigest_merge_close_to_combined(
        a in vec(-1e4f64..1e4, 1..1500),
        b in vec(-1e4f64..1e4, 1..1500),
    ) {
        let mut da = TDigest::new(100.0);
        let mut db = TDigest::new(100.0);
        let mut all: Vec<f64> = Vec::with_capacity(a.len() + b.len());
        for &v in &a { da.insert(v); all.push(v); }
        for &v in &b { db.insert(v); all.push(v); }
        da.merge_from(&db);
        prop_assert_eq!(da.count(), all.len() as u64);
        all.sort_by(|x, y| x.total_cmp(y));
        for q in [0.25, 0.5, 0.75] {
            let est = da.quantile(q).unwrap();
            // Rank-space error check (value-space can be huge for sparse data).
            let below = all.iter().filter(|&&v| v <= est).count() as f64;
            let frac = below / all.len() as f64;
            prop_assert!((frac - q).abs() < 0.15, "q={q} landed at cdf {frac}");
        }
    }

    /// q-digest never exceeds its theoretical rank-error bound.
    #[test]
    fn qdigest_respects_rank_error_bound(values in vec(0u64..4096, 1..3000)) {
        let mut d = QDigest::new(12, 64);
        for &v in &values {
            d.insert_weighted(v, 1);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let bound = d.rank_error_bound();
        for q in [0.25, 0.5, 0.75, 1.0] {
            let est = d.quantile(q).unwrap() as u64;
            let target_rank = ((q * n as f64).ceil() as u64).clamp(1, n);
            // est's plausible rank range in the data:
            let lo_rank = sorted.partition_point(|&v| v < est) as u64;
            let hi_rank = sorted.partition_point(|&v| v <= est) as u64;
            // q-digest overestimates never by more than the bound, and the
            // reported value's rank window must come within `bound` of the
            // target.
            let dist = if target_rank < lo_rank {
                lo_rank - target_rank
            } else {
                target_rank.saturating_sub(hi_rank)
            };
            prop_assert!(dist <= bound, "q={q} est={est} rank window [{lo_rank},{hi_rank}] target {target_rank} bound {bound}");
        }
    }

    /// q-digest merge preserves total count and stays within the merged
    /// error bound.
    #[test]
    fn qdigest_merge_counts(
        a in vec(0u64..1024, 0..1000),
        b in vec(0u64..1024, 0..1000),
    ) {
        let mut da = QDigest::new(10, 64);
        let mut db = QDigest::new(10, 64);
        for &v in &a { da.insert_weighted(v, 1); }
        for &v in &b { db.insert_weighted(v, 1); }
        da.merge_from(&db);
        prop_assert_eq!(da.count(), (a.len() + b.len()) as u64);
    }

    /// KLL never loses or invents weight, and its quantiles are monotone
    /// and clamped to the observed range.
    #[test]
    fn kll_weight_monotone_bounded(values in vec(-1e6f64..1e6, 1..3000)) {
        let mut s = KllSketch::new(64);
        for &v in &values {
            s.insert(v);
        }
        prop_assert_eq!(s.count(), values.len() as u64);
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut last = f64::NEG_INFINITY;
        for i in 1..=20 {
            let v = s.quantile(i as f64 / 20.0).unwrap();
            prop_assert!(v >= last && v >= lo && v <= hi);
            last = v;
        }
    }

    /// KLL median lands within a bounded rank error.
    #[test]
    fn kll_rank_error(values in vec(-1e5f64..1e5, 200..4000)) {
        let mut s = KllSketch::new(256);
        for &v in &values {
            s.insert(v);
        }
        let est = s.quantile(0.5).unwrap();
        let below = values.iter().filter(|&&v| v <= est).count() as f64;
        let frac = below / values.len() as f64;
        prop_assert!((frac - 0.5).abs() < 0.12, "median estimate at cdf {frac}");
    }

    /// Merging KLL sketches conserves counts.
    #[test]
    fn kll_merge_counts(
        a in vec(-1e4f64..1e4, 0..2000),
        b in vec(-1e4f64..1e4, 0..2000),
    ) {
        let mut sa = KllSketch::with_seed(128, 1);
        let mut sb = KllSketch::with_seed(128, 2);
        for &v in &a { sa.insert(v); }
        for &v in &b { sb.insert(v); }
        sa.merge_from(&sb);
        prop_assert_eq!(sa.count(), (a.len() + b.len()) as u64);
    }

    /// With an effectively infinite compression factor the q-digest is an
    /// exact counting structure.
    #[test]
    fn qdigest_exact_at_infinite_k(values in vec(0u64..512, 1..500)) {
        let mut d = QDigest::new(9, u64::MAX);
        for &v in &values {
            d.insert_weighted(v, 1);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.1, 0.5, 0.9, 1.0] {
            let est = d.quantile_u64(q).unwrap();
            let expect = exact_quantile(
                &sorted.iter().map(|&v| v as f64).collect::<Vec<_>>(), q) as u64;
            prop_assert_eq!(est, expect, "q={}", q);
        }
    }
}
