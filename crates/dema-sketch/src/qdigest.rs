//! The q-digest (Shrivastava, Buragohain, Agrawal, Suri — SenSys 2004).
//!
//! A q-digest summarizes counts of integer values from a bounded universe
//! `[0, 2^bits)` on an implicit binary tree: node 1 is the root covering the
//! whole universe, node `v` has children `2v` (lower half) and `2v+1` (upper
//! half), leaves are individual values. The *digest property* with
//! compression factor `k` keeps a node only when
//! `count(v) + count(sibling) + count(parent) > ⌊n/k⌋`; lighter sibling
//! pairs are folded into their parent, losing positional precision but
//! keeping at most `O(k · bits)` nodes. Rank error is bounded by
//! `bits · n / k`.
//!
//! Merging two digests is count-wise addition followed by recompression —
//! the property that made q-digests the classic in-sensor-network
//! aggregation sketch.

use std::collections::HashMap;

use crate::QuantileSketch;

/// A q-digest over the integer universe `[0, 2^bits)`.
#[derive(Debug, Clone)]
pub struct QDigest {
    /// Height of the binary tree (universe = `2^bits` values).
    bits: u32,
    /// Compression factor `k` (bigger ⇒ more nodes ⇒ better accuracy).
    k: u64,
    /// Sparse node counts, keyed by implicit heap index (root = 1).
    nodes: HashMap<u64, u64>,
    /// Total observations.
    total: u64,
    /// Inserts since the last compression.
    dirty: u64,
}

impl QDigest {
    /// Create an empty digest for values in `[0, 2^bits)` with compression
    /// factor `k`.
    ///
    /// # Panics
    /// Panics unless `1 <= bits <= 62` and `k >= 1`.
    pub fn new(bits: u32, k: u64) -> QDigest {
        assert!((1..=62).contains(&bits), "bits must be in 1..=62");
        assert!(k >= 1, "compression factor k must be >= 1");
        QDigest {
            bits,
            k,
            nodes: HashMap::new(),
            total: 0,
            dirty: 0,
        }
    }

    /// Universe size `2^bits`.
    #[inline]
    pub fn universe(&self) -> u64 {
        1u64 << self.bits
    }

    /// Number of stored tree nodes (the sketch's size).
    pub fn node_count(&mut self) -> usize {
        self.compress();
        self.nodes.len()
    }

    /// Insert an integer value `weight` times.
    ///
    /// Values outside the universe are clamped to its edges (a sensor
    /// producing an out-of-range reading still counts somewhere rather than
    /// silently vanishing).
    pub fn insert_weighted(&mut self, value: u64, weight: u64) {
        if weight == 0 {
            return;
        }
        let v = value.min(self.universe() - 1);
        let leaf = self.universe() + v; // heap index of the leaf
        *self.nodes.entry(leaf).or_insert(0) += weight;
        self.total += weight;
        self.dirty += weight;
        // Recompress when the uncompressed part could violate size bounds.
        if self.dirty > self.total / 2 + 16 {
            self.compress();
        }
    }

    /// The rank-error bound of this digest: `bits · n / k`.
    pub fn rank_error_bound(&self) -> u64 {
        (self.bits as u64) * self.total / self.k
    }

    /// Fold light sibling pairs upward to restore the digest property.
    fn compress(&mut self) {
        self.dirty = 0;
        if self.total == 0 {
            return;
        }
        let threshold = self.total / self.k;
        if threshold == 0 {
            return; // every node is allowed to stay
        }
        // Process level by level, deepest first, so parents produced by a
        // fold are themselves considered for folding one level up.
        let depth_of = |v: u64| 63 - v.leading_zeros();
        for depth in (1..=self.bits).rev() {
            let keys: Vec<u64> = self
                .nodes
                .keys()
                .copied()
                .filter(|&v| depth_of(v) == depth)
                .collect();
            for key in keys {
                let Some(&count) = self.nodes.get(&key) else {
                    continue;
                };
                let sibling = key ^ 1;
                let parent = key / 2;
                let sib_count = self.nodes.get(&sibling).copied().unwrap_or(0);
                let par_count = self.nodes.get(&parent).copied().unwrap_or(0);
                if count + sib_count + par_count <= threshold {
                    self.nodes.remove(&key);
                    self.nodes.remove(&sibling);
                    *self.nodes.entry(parent).or_insert(0) += count + sib_count;
                }
            }
        }
        self.nodes.retain(|_, c| *c > 0);
    }

    /// Value range `[lo, hi]` covered by heap node `v`.
    fn range(&self, v: u64) -> (u64, u64) {
        let depth = 63 - v.leading_zeros(); // floor(log2 v)
        let span_bits = self.bits - depth;
        let offset = v - (1u64 << depth);
        let lo = offset << span_bits;
        (lo, lo + (1u64 << span_bits) - 1)
    }

    /// Estimate the value at quantile `q ∈ (0, 1]` (`None` when empty).
    ///
    /// Nodes are visited in ascending `(hi, span)` order (post-order over
    /// value ranges); counts accumulate until the target rank is reached and
    /// the reporting node's upper bound is returned.
    pub fn quantile_u64(&self, q: f64) -> Option<u64> {
        if self.total == 0 || !(0.0..=1.0).contains(&q) || q == 0.0 {
            return None;
        }
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut entries: Vec<(u64, u64, u64)> = self
            .nodes
            .iter()
            .map(|(&v, &c)| {
                let (lo, hi) = self.range(v);
                (hi, hi - lo, c)
            })
            .collect();
        entries.sort_unstable();
        let mut acc = 0u64;
        for (hi, _, c) in entries {
            acc += c;
            if acc >= target {
                return Some(hi);
            }
        }
        // Numerically unreachable, but fall back to the maximum node.
        self.nodes.keys().map(|&v| self.range(v).1).max()
    }

    /// Merge another digest (same universe) into this one.
    ///
    /// # Panics
    /// Panics if the universes (bits) differ.
    pub fn merge_qdigest(&mut self, other: &QDigest) {
        assert_eq!(
            self.bits, other.bits,
            "q-digest universes must match to merge"
        );
        for (&v, &c) in &other.nodes {
            *self.nodes.entry(v).or_insert(0) += c;
        }
        self.total += other.total;
        self.compress();
    }
}

impl QuantileSketch for QDigest {
    fn insert(&mut self, value: f64) {
        let clamped = if value.is_finite() {
            value.max(0.0)
        } else {
            return;
        };
        self.insert_weighted(clamped.round() as u64, 1);
    }

    fn quantile(&self, q: f64) -> Option<f64> {
        // Compression only tightens size, not correctness; query a clone so
        // &self stays side-effect free.
        let mut snapshot = self.clone();
        snapshot.compress();
        snapshot.quantile_u64(q).map(|v| v as f64)
    }

    fn count(&self) -> u64 {
        self.total
    }

    fn merge_from(&mut self, other: &Self) {
        self.merge_qdigest(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_digest() {
        let d = QDigest::new(10, 16);
        assert_eq!(d.count(), 0);
        assert_eq!(d.quantile(0.5), None);
        assert_eq!(d.rank_error_bound(), 0);
    }

    #[test]
    fn single_value() {
        let mut d = QDigest::new(10, 16);
        d.insert_weighted(123, 1);
        assert_eq!(d.quantile_u64(0.5), Some(123));
        assert_eq!(d.quantile_u64(1.0), Some(123));
    }

    #[test]
    fn range_computation() {
        let d = QDigest::new(3, 4); // universe [0, 8)
        assert_eq!(d.range(1), (0, 7)); // root
        assert_eq!(d.range(2), (0, 3));
        assert_eq!(d.range(3), (4, 7));
        assert_eq!(d.range(8), (0, 0)); // first leaf
        assert_eq!(d.range(15), (7, 7)); // last leaf
    }

    #[test]
    fn exact_when_k_is_huge() {
        // threshold = n/k = 0 → no folding → exact ranks.
        let mut d = QDigest::new(10, u64::MAX);
        for v in [5u64, 1, 9, 3, 7, 3, 3] {
            d.insert_weighted(v, 1);
        }
        assert_eq!(d.quantile_u64(0.5), Some(3)); // rank 4 of [1,3,3,3,5,7,9]
        assert_eq!(d.quantile_u64(1.0), Some(9));
        assert_eq!(d.quantile_u64(1.0 / 7.0), Some(1));
    }

    #[test]
    fn rank_error_within_bound() {
        let n = 20_000u64;
        let bits = 15u32;
        let k = 256u64;
        let mut d = QDigest::new(bits, k);
        for i in 0..n {
            d.insert_weighted(i, 1);
        }
        let bound = d.rank_error_bound();
        assert!(bound < n, "bound {bound} should be nontrivial");
        for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let est = d.quantile_u64(q).unwrap();
            // True rank of est vs target rank: data is 0..n so the value IS
            // its 0-based rank.
            let target = (q * n as f64).ceil() as u64;
            let err = est.abs_diff(target - 1);
            assert!(
                err <= bound,
                "q={q}: est {est}, target {}, err {err} > bound {bound}",
                target - 1
            );
        }
    }

    #[test]
    fn node_count_is_compressed() {
        let mut d = QDigest::new(16, 64);
        for i in 0..100_000u64 {
            d.insert_weighted(i % 60_000, 1);
        }
        let nodes = d.node_count();
        // Theory: at most ~3k nodes (3 per k-bucket).
        assert!(nodes <= (3 * 64) as usize + 16, "{nodes} nodes");
    }

    #[test]
    fn merge_equals_combined_within_bound() {
        let mut a = QDigest::new(12, 128);
        let mut b = QDigest::new(12, 128);
        let mut combined = QDigest::new(12, 128);
        for i in 0..2_000u64 {
            a.insert_weighted(i, 1);
            combined.insert_weighted(i, 1);
            b.insert_weighted(i + 2_000, 1);
            combined.insert_weighted(i + 2_000, 1);
        }
        a.merge_qdigest(&b);
        assert_eq!(a.count(), combined.count());
        let bound = a.rank_error_bound().max(combined.rank_error_bound());
        for q in [0.25, 0.5, 0.75] {
            let m = a.quantile_u64(q).unwrap();
            let c = combined.quantile_u64(q).unwrap();
            assert!(
                m.abs_diff(c) <= 2 * bound,
                "q={q}: merged {m} vs combined {c}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "universes must match")]
    fn merge_rejects_mismatched_universe() {
        let mut a = QDigest::new(10, 16);
        let b = QDigest::new(12, 16);
        a.merge_qdigest(&b);
    }

    #[test]
    fn out_of_universe_values_clamp() {
        let mut d = QDigest::new(8, 16); // universe [0, 256)
        d.insert_weighted(1_000_000, 5);
        assert_eq!(d.count(), 5);
        assert_eq!(d.quantile_u64(0.5), Some(255));
    }

    #[test]
    fn weighted_inserts() {
        let mut d = QDigest::new(10, u64::MAX);
        d.insert_weighted(10, 99);
        d.insert_weighted(20, 1);
        assert_eq!(d.count(), 100);
        assert_eq!(d.quantile_u64(0.5), Some(10));
        assert_eq!(d.quantile_u64(1.0), Some(20));
    }

    #[test]
    fn float_trait_insert_rounds_and_clamps() {
        let mut d = QDigest::new(10, 64);
        d.insert(5.4);
        d.insert(-3.0); // clamps to 0
        d.insert(f64::NAN); // dropped
        assert_eq!(d.count(), 2);
    }

    #[test]
    fn quantiles_monotone() {
        let mut d = QDigest::new(14, 128);
        for i in 0..50_000u64 {
            d.insert_weighted((i * 7919) % 16_000, 1);
        }
        let mut last = 0.0;
        for i in 1..=20 {
            let v = d.quantile(i as f64 / 20.0).unwrap();
            assert!(v >= last, "q={}: {v} < {last}", i as f64 / 20.0);
            last = v;
        }
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn zero_bits_rejected() {
        let _ = QDigest::new(0, 16);
    }

    #[test]
    #[should_panic(expected = "k")]
    fn zero_k_rejected() {
        let _ = QDigest::new(10, 0);
    }
}
