//! The merging t-digest (Dunning & Ertl, 2019).
//!
//! A t-digest summarizes a distribution as a sequence of *centroids*
//! `(mean, weight)` sorted by mean. The `k1` scale function
//! `k(q) = (δ / 2π) · asin(2q − 1)` bounds every centroid to one unit of
//! k-space, which makes centroids near the tails tiny (high accuracy where
//! quantile queries care) and centroids in the middle large (bounded size:
//! at most ~δ centroids). New points accumulate in a buffer; when the buffer
//! fills, buffer + centroids are merged in one sorted pass. Digests merge
//! the same way, which is what makes the sketch usable decentralized.

use crate::QuantileSketch;

/// One weighted point mass of the digest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Centroid {
    /// Weighted mean of the observations absorbed into this centroid.
    pub mean: f64,
    /// Number of observations absorbed.
    pub weight: u64,
}

/// A merging t-digest with compression parameter δ.
///
/// Larger δ ⇒ more centroids ⇒ better accuracy and more memory. The paper's
/// baseline uses the library default δ = 100.
#[derive(Debug, Clone)]
pub struct TDigest {
    compression: f64,
    centroids: Vec<Centroid>,
    buffer: Vec<f64>,
    buffer_cap: usize,
    total: u64,
    min: f64,
    max: f64,
}

impl TDigest {
    /// Create an empty digest with compression δ (clamped to ≥ 10).
    pub fn new(compression: f64) -> TDigest {
        let compression = if compression.is_finite() {
            compression.max(10.0)
        } else {
            100.0
        };
        let buffer_cap = (compression as usize) * 5;
        TDigest {
            compression,
            centroids: Vec::new(),
            buffer: Vec::with_capacity(buffer_cap),
            buffer_cap,
            total: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The compression parameter δ.
    pub fn compression(&self) -> f64 {
        self.compression
    }

    /// Smallest observation, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.total > 0 || !self.buffer.is_empty()).then_some(self.min)
    }

    /// Largest observation, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.total > 0 || !self.buffer.is_empty()).then_some(self.max)
    }

    /// Current centroids (flushes the buffer first).
    pub fn centroids(&mut self) -> &[Centroid] {
        self.flush();
        &self.centroids
    }

    /// Build a digest directly from centroids (e.g. decoded from the wire).
    ///
    /// # Panics
    /// Panics if `centroids` is not sorted by mean or contains zero weights.
    pub fn from_centroids(compression: f64, centroids: Vec<Centroid>) -> TDigest {
        assert!(
            centroids.windows(2).all(|w| w[0].mean <= w[1].mean),
            "centroids must be sorted by mean"
        );
        assert!(
            centroids.iter().all(|c| c.weight > 0),
            "zero-weight centroid"
        );
        let total = centroids.iter().map(|c| c.weight).sum();
        let min = centroids.first().map(|c| c.mean).unwrap_or(f64::INFINITY);
        let max = centroids
            .last()
            .map(|c| c.mean)
            .unwrap_or(f64::NEG_INFINITY);
        let mut d = TDigest::new(compression);
        d.centroids = centroids;
        d.total = total;
        d.min = min;
        d.max = max;
        d
    }

    /// `k1` scale function.
    #[inline]
    fn k(&self, q: f64) -> f64 {
        self.compression / (2.0 * std::f64::consts::PI) * (2.0 * q - 1.0).asin()
    }

    /// Inverse of [`Self::k`].
    #[inline]
    fn k_inv(&self, k: f64) -> f64 {
        ((k * 2.0 * std::f64::consts::PI / self.compression).sin() + 1.0) / 2.0
    }

    /// Merge the insert buffer into the centroid list (one sorted pass).
    fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut incoming: Vec<Centroid> = self
            .buffer
            .drain(..)
            .map(|v| Centroid { mean: v, weight: 1 })
            .collect();
        incoming.sort_unstable_by(|a, b| a.mean.total_cmp(&b.mean));
        let merged = Self::merge_sorted(&self.centroids, &incoming);
        self.compress(merged);
    }

    /// Merge two centroid lists sorted by mean.
    fn merge_sorted(a: &[Centroid], b: &[Centroid]) -> Vec<Centroid> {
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i].mean <= b[j].mean {
                out.push(a[i]);
                i += 1;
            } else {
                out.push(b[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        out
    }

    /// Recompress a sorted centroid list under the k-space size constraint.
    fn compress(&mut self, sorted: Vec<Centroid>) {
        let total: u64 = sorted.iter().map(|c| c.weight).sum();
        self.total = total;
        if total == 0 {
            self.centroids.clear();
            return;
        }
        let mut out: Vec<Centroid> = Vec::with_capacity(self.compression as usize + 8);
        let mut w_so_far = 0u64;
        // Running accumulation of the centroid being built.
        let mut acc_sum = 0.0f64;
        let mut acc_w = 0u64;
        let mut q_limit = self.k_inv(self.k(0.0) + 1.0);
        for c in sorted {
            let q_new = (w_so_far + acc_w + c.weight) as f64 / total as f64;
            if acc_w > 0 && q_new > q_limit {
                // Seal the accumulated centroid, start a new one.
                out.push(Centroid {
                    mean: acc_sum / acc_w as f64,
                    weight: acc_w,
                });
                w_so_far += acc_w;
                q_limit = self.k_inv(self.k(w_so_far as f64 / total as f64) + 1.0);
                acc_sum = 0.0;
                acc_w = 0;
            }
            acc_sum += c.mean * c.weight as f64;
            acc_w += c.weight;
        }
        if acc_w > 0 {
            out.push(Centroid {
                mean: acc_sum / acc_w as f64,
                weight: acc_w,
            });
        }
        self.centroids = out;
    }

    /// Estimate the cumulative fraction of observations `<= value`.
    pub fn cdf(&mut self, value: f64) -> Option<f64> {
        self.flush();
        if self.total == 0 {
            return None;
        }
        if value < self.min {
            return Some(0.0);
        }
        if value >= self.max {
            return Some(1.0);
        }
        // Walk centroids, interpolating between adjacent means.
        let mut cum = 0.0f64;
        let total = self.total as f64;
        for (i, c) in self.centroids.iter().enumerate() {
            let half = c.weight as f64 / 2.0;
            let center = cum + half;
            if value < c.mean {
                let prev_mean = if i == 0 {
                    self.min
                } else {
                    self.centroids[i - 1].mean
                };
                let prev_center = if i == 0 {
                    0.0
                } else {
                    cum - self.centroids[i - 1].weight as f64 / 2.0
                };
                let span = c.mean - prev_mean;
                let frac = if span > 0.0 {
                    (value - prev_mean) / span
                } else {
                    0.5
                };
                return Some(
                    ((prev_center + frac * (center - prev_center)) / total).clamp(0.0, 1.0),
                );
            }
            cum += c.weight as f64;
        }
        Some(1.0)
    }

    fn quantile_inner(&self, q: f64) -> Option<f64> {
        if self.total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let total = self.total as f64;
        let target = q * total;
        let mut cum = 0.0f64;
        for (i, c) in self.centroids.iter().enumerate() {
            let half = c.weight as f64 / 2.0;
            if target < cum + half {
                // Interpolate between the previous centroid's mean (or min)
                // and this centroid's mean.
                let (prev_mean, prev_pos) = if i == 0 {
                    (self.min, 0.0)
                } else {
                    (
                        self.centroids[i - 1].mean,
                        cum - self.centroids[i - 1].weight as f64 / 2.0,
                    )
                };
                let pos = cum + half;
                let span = pos - prev_pos;
                let frac = if span > 0.0 {
                    (target - prev_pos) / span
                } else {
                    1.0
                };
                return Some((prev_mean + frac * (c.mean - prev_mean)).clamp(self.min, self.max));
            }
            cum += c.weight as f64;
        }
        Some(self.max)
    }
}

impl QuantileSketch for TDigest {
    fn insert(&mut self, value: f64) {
        if !value.is_finite() {
            return; // refuse NaN/inf rather than poisoning means
        }
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buffer.push(value);
        if self.buffer.len() >= self.buffer_cap {
            self.flush();
        }
    }

    fn quantile(&self, q: f64) -> Option<f64> {
        if self.buffer.is_empty() {
            return self.quantile_inner(q);
        }
        // Flush on a clone to keep &self queries cheap and side-effect free.
        let mut snapshot = self.clone();
        snapshot.flush();
        snapshot.quantile_inner(q)
    }

    fn count(&self) -> u64 {
        self.total + self.buffer.len() as u64
    }

    fn merge_from(&mut self, other: &Self) {
        let mut other = other.clone();
        other.flush();
        self.flush();
        if other.total == 0 {
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let merged = Self::merge_sorted(&self.centroids, &other.centroids);
        self.compress(merged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_digest(n: u64, compression: f64) -> TDigest {
        let mut d = TDigest::new(compression);
        for i in 0..n {
            d.insert(i as f64);
        }
        d
    }

    #[test]
    fn empty_digest() {
        let d = TDigest::new(100.0);
        assert_eq!(d.count(), 0);
        assert_eq!(d.quantile(0.5), None);
        assert_eq!(d.min(), None);
        assert_eq!(d.max(), None);
    }

    #[test]
    fn single_value() {
        let mut d = TDigest::new(100.0);
        d.insert(42.0);
        assert_eq!(d.count(), 1);
        assert_eq!(d.quantile(0.5), Some(42.0));
        assert_eq!(d.quantile(0.01), Some(42.0));
        assert_eq!(d.quantile(1.0), Some(42.0));
    }

    #[test]
    fn uniform_median_accuracy() {
        let d = uniform_digest(100_000, 100.0);
        let median = d.quantile(0.5).unwrap();
        assert!((median - 50_000.0).abs() < 500.0, "median {median}");
    }

    #[test]
    fn tail_quantiles_are_very_accurate() {
        let d = uniform_digest(100_000, 100.0);
        let p001 = d.quantile(0.001).unwrap();
        let p999 = d.quantile(0.999).unwrap();
        // k1 scale function concentrates centroids at the tails.
        assert!((p001 - 100.0).abs() < 50.0, "p0.1 {p001}");
        assert!((p999 - 99_900.0).abs() < 50.0, "p99.9 {p999}");
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let d = uniform_digest(10_000, 50.0);
        let mut last = f64::NEG_INFINITY;
        for i in 1..=100 {
            let v = d.quantile(i as f64 / 100.0).unwrap();
            assert!(v >= last, "q={} gave {v} < {last}", i as f64 / 100.0);
            last = v;
        }
    }

    #[test]
    fn centroid_count_is_bounded() {
        let mut d = uniform_digest(1_000_000, 100.0);
        let n = d.centroids().len();
        // Theory: at most ~2δ centroids after compression.
        assert!(n <= 220, "{n} centroids for δ=100");
        assert!(n >= 30, "{n} suspiciously few centroids");
    }

    #[test]
    fn merge_matches_combined_stream() {
        let mut a = TDigest::new(100.0);
        let mut b = TDigest::new(100.0);
        let mut combined = TDigest::new(100.0);
        for i in 0..50_000 {
            let (x, y) = (i as f64, (i + 50_000) as f64);
            a.insert(x);
            b.insert(y);
            combined.insert(x);
            combined.insert(y);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), combined.count());
        for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let merged = a.quantile(q).unwrap();
            let single = combined.quantile(q).unwrap();
            assert!(
                (merged - single).abs() < 2_000.0,
                "q={q}: merged {merged} vs single {single}"
            );
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut d = uniform_digest(1000, 100.0);
        let before = d.quantile(0.5).unwrap();
        d.merge_from(&TDigest::new(100.0));
        assert_eq!(d.count(), 1000);
        assert_eq!(d.quantile(0.5).unwrap(), before);

        let mut empty = TDigest::new(100.0);
        empty.merge_from(&uniform_digest(1000, 100.0));
        assert_eq!(empty.count(), 1000);
    }

    #[test]
    fn nan_and_infinity_are_rejected() {
        let mut d = TDigest::new(100.0);
        d.insert(f64::NAN);
        d.insert(f64::INFINITY);
        d.insert(f64::NEG_INFINITY);
        assert_eq!(d.count(), 0);
        d.insert(1.0);
        assert_eq!(d.count(), 1);
        assert_eq!(d.quantile(0.5), Some(1.0));
    }

    #[test]
    fn min_max_are_exact() {
        let mut d = TDigest::new(20.0);
        for v in [5.0, -3.0, 100.5, 7.0, 0.0] {
            d.insert(v);
        }
        assert_eq!(d.min(), Some(-3.0));
        assert_eq!(d.max(), Some(100.5));
        assert_eq!(d.quantile(1.0), Some(100.5));
    }

    #[test]
    fn cdf_roundtrips_quantile() {
        let mut d = uniform_digest(100_000, 100.0);
        for q in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let v = d.quantile(q).unwrap();
            let back = d.cdf(v).unwrap();
            assert!((back - q).abs() < 0.02, "q={q} v={v} cdf={back}");
        }
        assert_eq!(d.cdf(-1.0), Some(0.0));
        assert_eq!(d.cdf(1e12), Some(1.0));
    }

    #[test]
    fn skewed_distribution_accuracy() {
        // Exponential-ish skew via squares.
        let mut d = TDigest::new(100.0);
        let mut exact: Vec<f64> = Vec::new();
        for i in 0..50_000u64 {
            let v = (i as f64 / 100.0).powi(2);
            d.insert(v);
            exact.push(v);
        }
        exact.sort_by(|a, b| a.total_cmp(b));
        for q in [0.25, 0.5, 0.75, 0.95] {
            let est = d.quantile(q).unwrap();
            let truth = exact[((q * 50_000.0) as usize).min(49_999)];
            let rel = (est - truth).abs() / truth.max(1.0);
            assert!(rel < 0.02, "q={q} est={est} truth={truth}");
        }
    }

    #[test]
    fn from_centroids_reconstructs() {
        let mut d = uniform_digest(10_000, 100.0);
        let centroids = d.centroids().to_vec();
        let d2 = TDigest::from_centroids(100.0, centroids);
        assert_eq!(d2.count(), 10_000);
        let (a, b) = (d.quantile(0.5).unwrap(), d2.quantile(0.5).unwrap());
        assert!((a - b).abs() < 200.0, "{a} vs {b}");
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn from_centroids_rejects_unsorted() {
        let _ = TDigest::from_centroids(
            100.0,
            vec![
                Centroid {
                    mean: 5.0,
                    weight: 1,
                },
                Centroid {
                    mean: 1.0,
                    weight: 1,
                },
            ],
        );
    }

    #[test]
    fn low_compression_still_sane() {
        let d = uniform_digest(10_000, 10.0);
        let median = d.quantile(0.5).unwrap();
        assert!((median - 5_000.0).abs() < 1_500.0, "median {median}");
    }

    #[test]
    fn duplicate_heavy_stream() {
        let mut d = TDigest::new(100.0);
        for _ in 0..10_000 {
            d.insert(7.0);
        }
        assert_eq!(d.quantile(0.5), Some(7.0));
        assert_eq!(d.quantile(0.99), Some(7.0));
    }
}
