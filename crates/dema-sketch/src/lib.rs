#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # dema-sketch
//!
//! Approximate, mergeable quantile sketches implemented from scratch:
//!
//! * [`tdigest::TDigest`] — the *merging* t-digest of Dunning & Ertl
//!   ("Computing extremely accurate quantiles using t-digests", 2019), the
//!   paper's Tdigest baseline. Constant memory, very fast inserts, high
//!   accuracy near the tails via the `k1` scale function.
//! * [`qdigest::QDigest`] — the q-digest of Shrivastava et al. ("Medians and
//!   beyond", SenSys 2004) for bounded integer domains, the classic sensor-
//!   network sketch the paper cites as related work.
//! * [`kll::KllSketch`] — the KLL sketch (Karnin/Lang/Liberty, FOCS 2016),
//!   the modern DataSketches default, with distribution-free rank
//!   guarantees over arbitrary floats.
//!
//! All three implement [`QuantileSketch`], are mergeable (the property that
//! makes them usable in decentralized topologies), and trade exactness for
//! constant space — which is precisely the trade-off Dema refuses: Dema is
//! exact, these are fast-and-approximate comparison points.

pub mod kll;
pub mod qdigest;
pub mod tdigest;

pub use kll::KllSketch;
pub use qdigest::QDigest;
pub use tdigest::TDigest;

/// Common interface of mergeable quantile sketches.
pub trait QuantileSketch {
    /// Insert one observation.
    fn insert(&mut self, value: f64);

    /// Estimate the value at quantile `q ∈ (0, 1]`. Returns `None` for an
    /// empty sketch.
    fn quantile(&self, q: f64) -> Option<f64>;

    /// Number of observations absorbed.
    fn count(&self) -> u64;

    /// Merge another sketch of the same kind into this one.
    fn merge_from(&mut self, other: &Self);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both sketches agree with the exact median on a uniform dataset to
    /// within a generous tolerance — a smoke test that the implementations
    /// behave uniformly behind the trait; tight error bounds live in each
    /// module.
    #[test]
    fn sketches_behave_uniformly_behind_the_trait() {
        fn run<S: QuantileSketch>(mut s: S) -> f64 {
            for i in 0..10_001 {
                s.insert(i as f64);
            }
            assert_eq!(s.count(), 10_001);
            s.quantile(0.5).unwrap()
        }
        let td = run(TDigest::new(100.0));
        assert!((td - 5000.0).abs() < 100.0, "tdigest median {td}");
        let qd = run(QDigest::new(14, 64));
        assert!((qd - 5000.0).abs() < 700.0, "qdigest median {qd}");
        let kll = run(KllSketch::new(128));
        assert!((kll - 5000.0).abs() < 300.0, "kll median {kll}");
    }
}
