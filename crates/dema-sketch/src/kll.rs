//! The KLL sketch (Karnin, Lang, Liberty — "Optimal Quantile Approximation
//! in Streams", FOCS 2016).
//!
//! KLL is the modern default for mergeable quantile sketches (Apache
//! DataSketches' recommendation over q-digest-style structures). It keeps a
//! hierarchy of *compactors*: level `i` stores items each representing
//! `2^i` original observations. When a level overflows its capacity, it is
//! sorted and every other item (random offset) is promoted to the level
//! above — halving the count while preserving ranks in expectation. Level
//! capacities shrink geometrically from the top (`k · c^depth`, `c = 2/3`),
//! giving `O(k)` space and uniform rank error `O(n/k)` with high
//! probability.
//!
//! Compared to the t-digest (great tails, no worst-case guarantee) and the
//! q-digest (bounded integer domains), KLL offers distribution-free rank
//! guarantees over arbitrary `f64`s — included here as the third
//! comparison point for the accuracy experiments.

use crate::QuantileSketch;

/// Geometric capacity decay per level below the top.
const C: f64 = 2.0 / 3.0;

/// A KLL sketch over `f64` observations.
#[derive(Debug, Clone)]
pub struct KllSketch {
    /// Top-level capacity parameter (accuracy knob).
    k: usize,
    /// `compactors[i]` holds items of weight `2^i`.
    compactors: Vec<Vec<f64>>,
    total: u64,
    /// xorshift64 state for compaction coin flips (deterministic per seed).
    rng: u64,
    min: f64,
    max: f64,
}

impl KllSketch {
    /// Create a sketch with capacity parameter `k` (clamped to ≥ 8).
    /// Typical values: 128 (~1 % rank error), 256, 512.
    pub fn new(k: usize) -> KllSketch {
        KllSketch::with_seed(k, 0x9E37_79B9_7F4A_7C15)
    }

    /// [`KllSketch::new`] with an explicit seed for the compaction coins.
    pub fn with_seed(k: usize, seed: u64) -> KllSketch {
        KllSketch {
            k: k.max(8),
            compactors: vec![Vec::new()],
            total: 0,
            rng: seed | 1,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The capacity parameter.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Items currently retained (the sketch's size).
    pub fn retained(&self) -> usize {
        self.compactors.iter().map(Vec::len).sum()
    }

    /// Smallest observation (`None` when empty) — tracked exactly.
    pub fn min(&self) -> Option<f64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty) — tracked exactly.
    pub fn max(&self) -> Option<f64> {
        (self.total > 0).then_some(self.max)
    }

    /// Capacity of `level`, shrinking geometrically from the top.
    fn capacity(&self, level: usize) -> usize {
        let depth = self.compactors.len() - 1 - level;
        ((self.k as f64) * C.powi(depth as i32)).ceil() as usize
    }

    #[inline]
    fn coin(&mut self) -> bool {
        // xorshift64
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x & 1 == 1
    }

    /// Compact every level that exceeds its capacity.
    fn compress(&mut self) {
        let mut level = 0;
        while level < self.compactors.len() {
            if self.compactors[level].len() > self.capacity(level) {
                if level + 1 == self.compactors.len() {
                    self.compactors.push(Vec::new());
                }
                let offset = usize::from(self.coin());
                let mut items = std::mem::take(&mut self.compactors[level]);
                items.sort_by(|a, b| a.total_cmp(b));
                // Promote every other item; an odd leftover stays behind so
                // total weight is conserved exactly.
                let mut kept_back = Vec::new();
                let promote: Vec<f64> = items.iter().copied().skip(offset).step_by(2).collect();
                if items.len() % 2 == 1 {
                    // One item has no partner: keep it at this level.
                    let leftover_idx = if offset == 0 { items.len() - 1 } else { 0 };
                    kept_back.push(items[leftover_idx]);
                }
                // Weight conservation: promoted items double their weight;
                // with an even count the halves pair exactly. With an odd
                // count we promote floor/2 and retain the unpaired item.
                let promote = if items.len() % 2 == 1 {
                    let paired = if offset == 0 {
                        &items[..items.len() - 1]
                    } else {
                        &items[1..]
                    };
                    paired.iter().copied().step_by(2).collect()
                } else {
                    promote
                };
                self.compactors[level] = kept_back;
                self.compactors[level + 1].extend(promote);
            }
            level += 1;
        }
    }

    /// All `(value, weight)` pairs, sorted by value.
    ///
    /// This is the sketch's mergeable summary: shipping these pairs (with
    /// the exact `min`/`max`) lets a remote peer answer rank queries over
    /// the union of several sketches — the basis of the cluster layer's
    /// distributed-KLL engine.
    pub fn weighted_items(&self) -> Vec<(f64, u64)> {
        let mut items: Vec<(f64, u64)> = self
            .compactors
            .iter()
            .enumerate()
            .flat_map(|(level, c)| c.iter().map(move |&v| (v, 1u64 << level)))
            .collect();
        items.sort_by(|a, b| a.0.total_cmp(&b.0));
        items
    }

    /// Estimated number of observations `<= value`.
    pub fn rank(&self, value: f64) -> u64 {
        self.weighted_items()
            .iter()
            .take_while(|(v, _)| *v <= value)
            .map(|(_, w)| w)
            .sum()
    }

    /// Total weight retained (equals the observation count — the sketch
    /// conserves weight exactly; checked by tests).
    pub fn weight(&self) -> u64 {
        self.compactors
            .iter()
            .enumerate()
            .map(|(level, c)| (c.len() as u64) << level)
            .sum()
    }
}

impl QuantileSketch for KllSketch {
    fn insert(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.compactors[0].push(value);
        self.total += 1;
        if self.compactors[0].len() > self.capacity(0) {
            self.compress();
        }
    }

    fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 || !(0.0..=1.0).contains(&q) || q == 0.0 {
            return None;
        }
        let items = self.weighted_items();
        let total: u64 = items.iter().map(|(_, w)| w).sum();
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut acc = 0u64;
        for (v, w) in items {
            acc += w;
            if acc >= target {
                return Some(v.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    fn count(&self) -> u64 {
        self.total
    }

    fn merge_from(&mut self, other: &Self) {
        while self.compactors.len() < other.compactors.len() {
            self.compactors.push(Vec::new());
        }
        for (level, items) in other.compactors.iter().enumerate() {
            self.compactors[level].extend_from_slice(items);
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.rng ^= other.rng.rotate_left(17);
        self.compress();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: u64, k: usize) -> KllSketch {
        let mut s = KllSketch::new(k);
        for i in 0..n {
            s.insert(i as f64);
        }
        s
    }

    #[test]
    fn empty_sketch() {
        let s = KllSketch::new(128);
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn weight_conservation_exact() {
        // The compaction scheme must never lose or invent observations.
        for n in [1u64, 7, 100, 1_234, 50_000] {
            let s = filled(n, 64);
            assert_eq!(s.weight(), n, "weight drift at n={n}");
            assert_eq!(s.count(), n);
        }
    }

    #[test]
    fn small_inputs_are_exact() {
        let mut s = KllSketch::new(128);
        for v in [5.0, 1.0, 9.0, 3.0, 7.0] {
            s.insert(v);
        }
        assert_eq!(s.quantile(0.5), Some(5.0));
        assert_eq!(s.quantile(0.2), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(9.0));
    }

    #[test]
    fn rank_error_bounded_on_uniform() {
        let n = 200_000u64;
        let s = filled(n, 256);
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let est = s.quantile(q).unwrap();
            let true_rank = est; // value == 0-based rank for 0..n
            let target = q * n as f64;
            let err = (true_rank - target).abs() / n as f64;
            assert!(err < 0.02, "q={q}: est {est}, rank error {err}");
        }
    }

    #[test]
    fn space_is_sublinear() {
        let s = filled(1_000_000, 128);
        assert!(s.retained() < 1500, "{} items retained", s.retained());
    }

    #[test]
    fn quantiles_monotone() {
        let s = filled(100_000, 128);
        let mut last = f64::NEG_INFINITY;
        for i in 1..=50 {
            let v = s.quantile(i as f64 / 50.0).unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn merge_conserves_weight_and_accuracy() {
        let mut a = KllSketch::with_seed(128, 1);
        let mut b = KllSketch::with_seed(128, 2);
        for i in 0..100_000u64 {
            a.insert(i as f64);
            b.insert((i + 100_000) as f64);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), 200_000);
        assert_eq!(a.weight(), 200_000);
        let median = a.quantile(0.5).unwrap();
        assert!((median - 100_000.0).abs() < 5_000.0, "median {median}");
        assert_eq!(a.min(), Some(0.0));
        assert_eq!(a.max(), Some(199_999.0));
    }

    #[test]
    fn merge_with_empty() {
        let mut s = filled(1000, 64);
        s.merge_from(&KllSketch::new(64));
        assert_eq!(s.count(), 1000);
        let mut empty = KllSketch::new(64);
        empty.merge_from(&filled(1000, 64));
        assert_eq!(empty.count(), 1000);
    }

    #[test]
    fn nan_rejected() {
        let mut s = KllSketch::new(64);
        s.insert(f64::NAN);
        s.insert(f64::INFINITY);
        assert_eq!(s.count(), 0);
        s.insert(2.5);
        assert_eq!(s.quantile(0.5), Some(2.5));
    }

    #[test]
    fn duplicate_heavy() {
        let mut s = KllSketch::new(64);
        for _ in 0..100_000 {
            s.insert(7.0);
        }
        assert_eq!(s.quantile(0.5), Some(7.0));
        assert_eq!(s.weight(), 100_000);
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = |seed| {
            let mut s = KllSketch::with_seed(128, seed);
            for i in 0..50_000u64 {
                s.insert(((i * 31) % 9973) as f64);
            }
            (1..20)
                .map(|i| s.quantile(i as f64 / 20.0).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(42), mk(42));
    }

    #[test]
    fn rank_function_consistent_with_quantile() {
        let s = filled(100_000, 256);
        let v = s.quantile(0.5).unwrap();
        let r = s.rank(v);
        assert!((r as f64 - 50_000.0).abs() < 3_000.0, "rank {r}");
    }
}
