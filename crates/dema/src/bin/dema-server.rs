#![forbid(unsafe_code)]

//! `dema-server`: many leaf nodes + one root in a single process, hosted
//! on the reactor runtime (DESIGN.md §13).
//!
//! ```sh
//! cargo run --release --bin dema-server -- --leaves 1000
//! ```
//!
//! Every leaf sorts its windows locally and speaks the full Dema protocol
//! to the root over mem links (or loopback TCP with `--transport tcp`);
//! the reactor multiplexes all of them onto `--threads` shard loops plus
//! one root loop. Each window's answer is verified against a sort oracle
//! over the complete input, so a non-zero exit means a wrong quantile,
//! not just a crashed process.

use std::process::ExitCode;
use std::time::Instant;

use dema::cluster::config::{ClusterConfig, EngineKind, TransportKind};
use dema::cluster::runner::{data_traffic, run_cluster};
use dema::core::coordinator::quantile_ground_truth;
use dema::core::event::Event;
use dema::core::quantile::Quantile;

const USAGE: &str = "\
dema-server: boot N leaf steppers + a root on the reactor runtime

USAGE:
    dema-server [OPTIONS]

OPTIONS:
    --leaves <N>        leaf node count                  [default: 1000]
    --windows <W>       tumbling windows per leaf        [default: 4]
    --events <E>        events per leaf per window       [default: 100]
    --gamma <G>         Dema slice factor                [default: 64]
    --transport <T>     mem | tcp                        [default: mem]
    --engine <E>        dema | centralized | dec-sort    [default: dema]
    --threads <N>       reactor shards / sort budget     [default: DEMA_THREADS]
    --quiet             only print the verdict line
";

struct Args {
    leaves: usize,
    windows: u64,
    events: usize,
    gamma: u64,
    transport: TransportKind,
    engine: EngineKind,
    threads: Option<usize>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        leaves: 1000,
        windows: 4,
        events: 100,
        gamma: 64,
        transport: TransportKind::Mem,
        engine: ClusterConfig::dema_fixed(64, Quantile::MEDIAN).engine,
        threads: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    let mut engine_name = String::from("dema");
    while let Some(flag) = it.next() {
        if flag == "--quiet" {
            args.quiet = true;
            continue;
        }
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        let num = || {
            value
                .parse::<u64>()
                .map_err(|_| format!("{flag} expects a number, got `{value}`"))
        };
        match flag.as_str() {
            "--leaves" => args.leaves = num()?.max(1) as usize,
            "--windows" => args.windows = num()?.max(1),
            "--events" => args.events = num()?.max(1) as usize,
            "--gamma" => args.gamma = num()?.max(2),
            "--threads" => args.threads = Some(num()?.max(1) as usize),
            "--transport" => {
                args.transport = match value.as_str() {
                    "mem" => TransportKind::Mem,
                    "tcp" => TransportKind::Tcp,
                    other => return Err(format!("unknown transport `{other}`")),
                }
            }
            "--engine" => engine_name = value,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    args.engine = match engine_name.as_str() {
        "dema" => ClusterConfig::dema_fixed(args.gamma, Quantile::MEDIAN).engine,
        "centralized" => EngineKind::Centralized,
        "dec-sort" => EngineKind::DecSort,
        other => return Err(format!("unknown engine `{other}` (exact engines only)")),
    };
    Ok(args)
}

/// Deterministic per-leaf inputs: leaf `n`'s event `i` of window `w` holds
/// value `w·10⁶ + i·leaves + n`, so values interleave across leaves and
/// every window has a distinct global median the oracle recomputes.
fn inputs(leaves: usize, windows: u64, events: usize) -> Vec<Vec<Vec<Event>>> {
    (0..leaves)
        .map(|n| {
            (0..windows)
                .map(|w| {
                    (0..events)
                        .map(|i| {
                            let value = w as i64 * 1_000_000 + (i * leaves + n) as i64;
                            Event::new(value, w, w * events as u64 + i as u64)
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("dema-server: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let inputs = inputs(args.leaves, args.windows, args.events);
    let mut config = ClusterConfig::baseline(args.engine, Quantile::MEDIAN);
    config.transport = args.transport;
    config.threads = args.threads;

    let started = Instant::now();
    let report = match run_cluster(&config, inputs.clone()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dema-server: cluster run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wall = started.elapsed();

    // Sort oracle: re-derive every window's exact answer from the full
    // input and compare. All supported engines are exact, so any
    // divergence is a protocol bug, not approximation error.
    let mut bad = 0usize;
    for (w, outcome) in report.outcomes.iter().enumerate() {
        let per_node: Vec<Vec<Event>> = inputs.iter().map(|leaf| leaf[w].clone()).collect();
        let expect = match quantile_ground_truth(&per_node, Quantile::MEDIAN) {
            Ok(e) => e.value,
            Err(e) => {
                eprintln!("dema-server: oracle failed on window {w}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if outcome.value != Some(expect) {
            eprintln!(
                "dema-server: window {w}: got {:?}, oracle says {expect}",
                outcome.value
            );
            bad += 1;
        }
    }

    if !args.quiet {
        let traffic = data_traffic(&report).plus(&report.control_traffic);
        let r = &report.reactor;
        println!(
            "leaves {}   windows {}   events/leaf/window {}   engine {}   transport {:?}",
            args.leaves,
            args.windows,
            args.events,
            config.engine.label(),
            args.transport,
        );
        println!(
            "reactor: {} sweeps, {} events, {} timers, max ready depth {}, max timer lag {} µs",
            r.ticks, r.events, r.timers, r.max_ready_depth, r.max_timer_lag_us,
        );
        println!(
            "wire: {} events / {} bytes   throughput: {:.0} events/s   wall: {wall:.2?}",
            traffic.events,
            traffic.bytes,
            report.throughput_eps(),
        );
    }
    if bad > 0 {
        eprintln!(
            "dema-server: {bad}/{} windows diverged from the sort oracle",
            args.windows
        );
        return ExitCode::FAILURE;
    }
    println!(
        "dema-server: {} leaves x {} windows verified exact against the sort oracle",
        args.leaves, args.windows,
    );
    ExitCode::SUCCESS
}
