#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # Dema
//!
//! A from-scratch Rust implementation of **Dema** (EDBT 2025): exact,
//! decentralized window aggregation for non-decomposable quantile functions
//! — plus the full evaluation stack around it (stream-processing substrate,
//! baselines, sketches, generators, transports, and benchmark harness).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `dema-core` | the Dema algorithm: slices, synopses, window-cut selection, adaptive γ |
//! | [`spe`] | `dema-spe` | windows, watermarks, aggregate algebra, stream slicing |
//! | [`sketch`] | `dema-sketch` | t-digest and q-digest |
//! | [`wire`] | `dema-wire` | binary protocol + framing |
//! | [`net`] | `dema-net` | accounted in-memory and TCP transports |
//! | [`gen`] | `dema-gen` | DEBS-like and synthetic workload generators |
//! | [`metrics`] | `dema-metrics` | latency/throughput/network instrumentation |
//! | [`cluster`] | `dema-cluster` | the node runtime, engine plugins, star/tree overlays |
//!
//! ## Quickstart
//!
//! ```
//! use dema::cluster::{run_cluster, ClusterConfig};
//! use dema::gen::SoccerGenerator;
//! use dema::core::quantile::Quantile;
//!
//! // Two edge nodes, three one-second windows, 1 000 events/s each.
//! let inputs: Vec<_> = (0..2)
//!     .map(|n| SoccerGenerator::new(n, 1, 1_000, 0).take_windows(3, 1_000))
//!     .collect();
//!
//! let report = run_cluster(
//!     &ClusterConfig::dema_fixed(100, Quantile::MEDIAN),
//!     inputs,
//! )
//! .unwrap();
//!
//! assert_eq!(report.outcomes.len(), 3); // one exact median per window
//! ```

pub use dema_cluster as cluster;
pub use dema_core as core;
pub use dema_gen as gen;
pub use dema_metrics as metrics;
pub use dema_net as net;
pub use dema_sketch as sketch;
pub use dema_spe as spe;
pub use dema_wire as wire;
