#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # dema-metrics
//!
//! Instrumentation for the Dema experiments, covering the paper's metrics
//! (§4, "Experimental Design"):
//!
//! * **network cost** — [`counters::NetworkCounters`]: lock-free per-link
//!   byte / message / event counters fed by the transports;
//! * **latency** — [`histogram::LatencyHistogram`]: a log-bucketed histogram
//!   (HDR-style: power-of-two major buckets subdivided linearly, ≤ ~1.6 %
//!   relative error) for event-arrival → result latency;
//! * **throughput** — [`throughput::ThroughputMeter`] and the
//!   *sustainable-throughput* search of Karimov et al. (ICDE '18):
//!   [`throughput::sustainable_throughput`] binary-searches the highest
//!   offered rate a system sustains without growing backlog;
//! * **fault handling** — [`faults::FaultCounters`]: retry / timeout /
//!   duplicate-suppression / degradation counters fed by the cluster's
//!   fault-tolerance layer;
//! * **event loop** — [`reactor::ReactorStats`]: per-run reactor loop
//!   counters (events per sweep, timer lag, ready-queue depth) fed by the
//!   reactor runtime hosting the cluster (DESIGN.md §13).

pub mod counters;
pub mod faults;
pub mod histogram;
pub mod reactor;
pub mod throughput;

pub use counters::{NetworkCounters, NetworkSnapshot};
pub use faults::{FaultCounters, FaultSnapshot};
pub use histogram::LatencyHistogram;
pub use reactor::{ReactorSnapshot, ReactorStats};
pub use throughput::{sustainable_throughput, ThroughputMeter};
