//! Log-bucketed latency histogram.
//!
//! HDR-histogram style layout without the dependency: values are binned into
//! power-of-two *major* buckets, each subdivided into 64 linear sub-buckets,
//! giving a worst-case relative error of `1/64 ≈ 1.6 %` across the full
//! `u64` range with a fixed ~33 KiB footprint. Good enough to report the
//! p50/p95/p99 latencies of Figure 5b without ever allocating on the record
//! path.

/// Sub-buckets per power-of-two bucket (must be a power of two).
const SUBS: u64 = 64;
const SUB_BITS: u32 = 6;

/// A fixed-size histogram of `u64` samples (e.g. latency in microseconds).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        // 64 major buckets of SUBS sub-buckets cover all of u64.
        LatencyHistogram {
            buckets: vec![0; (64 * SUBS) as usize],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Index of the bucket holding `v`.
    #[inline]
    fn index(v: u64) -> usize {
        if v < SUBS {
            return v as usize; // exact for small values
        }
        let major = 63 - v.leading_zeros() as u64; // floor(log2 v), >= SUB_BITS
        let shift = major - SUB_BITS as u64;
        let sub = (v >> shift) & (SUBS - 1); // top SUB_BITS bits below the MSB
        ((major - SUB_BITS as u64 + 1) * SUBS + sub) as usize
    }

    /// Representative (upper-bound) value of bucket `idx`.
    #[inline]
    fn bucket_value(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < SUBS {
            return idx;
        }
        let major = idx / SUBS + SUB_BITS as u64 - 1;
        let sub = idx % SUBS;
        let shift = major - SUB_BITS as u64;
        ((1 << SUB_BITS) | sub) << shift
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact minimum sample, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum sample, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact arithmetic mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Approximate quantile (≤ ~1.6 % relative error), `None` when empty or
    /// `q` outside `(0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 || !(q > 0.0 && q <= 1.0) {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(Self::bucket_value(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram into this one.
    pub fn merge_from(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clear all samples.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUBS {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5).unwrap(), SUBS / 2 - 1);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(SUBS - 1));
    }

    #[test]
    fn quantile_relative_error_bounded() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100_000u64 {
            h.record(i * 17); // values up to 1.7M
        }
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            let est = h.quantile(q).unwrap() as f64;
            let truth = (q * 100_000.0).ceil() * 17.0;
            let rel = (est - truth).abs() / truth;
            assert!(rel < 0.02, "q={q}: est {est} truth {truth} rel {rel}");
        }
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), Some(u64::MAX));
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= u64::MAX / 2);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.mean(), Some(25.0));
    }

    #[test]
    fn quantile_bounds_clamped_to_observed_range() {
        let mut h = LatencyHistogram::new();
        h.record(1000);
        assert_eq!(h.quantile(0.000001), Some(1000)); // tiny q clamps to rank 1
        assert_eq!(h.quantile(0.5), Some(1000));
        assert_eq!(h.quantile(1.0), Some(1000));
        assert_eq!(h.quantile(1.5), None);
        assert_eq!(h.quantile(0.0), None);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in 1..=500u64 {
            a.record(v);
            b.record(v + 500);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), 1000);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(1000));
        let median = a.quantile(0.5).unwrap();
        assert!(
            (median as i64 - 500).unsigned_abs() <= 16,
            "median {median}"
        );
    }

    #[test]
    fn reset_clears() {
        let mut h = LatencyHistogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn index_value_roundtrip_is_monotone() {
        let mut samples: Vec<u64> = Vec::new();
        for exp in 0..63 {
            for off in [0u64, 1, 3] {
                samples.push((1u64 << exp).saturating_add(off));
            }
        }
        samples.sort_unstable();
        let mut last = 0;
        for v in samples {
            let idx = LatencyHistogram::index(v);
            let rep = LatencyHistogram::bucket_value(idx);
            // Representative within 1/64 of the value.
            assert!(rep as f64 >= v as f64 * 0.98, "v={v} rep={rep}");
            assert!(rep as f64 <= v as f64 * 1.02 + 1.0, "v={v} rep={rep}");
            assert!(idx >= last, "indices must be monotone in v (v={v})");
            last = idx;
        }
    }
}
