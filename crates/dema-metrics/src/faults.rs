//! Retry / degradation accounting for the fault-tolerance layer.
//!
//! The cluster root increments these counters as its retry state machine
//! runs; the harness snapshots them into the run report so a chaos run's
//! recovery work (and any loss of exactness) is visible next to the
//! network-cost figures.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cumulative fault-handling counters for one run.
#[derive(Debug, Default)]
pub struct FaultCounters {
    timeouts: AtomicU64,
    retries: AtomicU64,
    duplicates_suppressed: AtomicU64,
    nodes_declared_dead: AtomicU64,
    nodes_drained: AtomicU64,
    degraded_windows: AtomicU64,
}

/// A point-in-time copy of [`FaultCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSnapshot {
    /// Per-window deadlines that expired before every expected message
    /// arrived.
    pub timeouts: u64,
    /// Retry messages (resend / re-request) the root sent.
    pub retries: u64,
    /// Duplicate protocol messages discarded at the root.
    pub duplicates_suppressed: u64,
    /// Locals declared dead after exhausting their liveness budget.
    pub nodes_declared_dead: u64,
    /// Locals that departed cleanly via the membership drain handshake.
    /// Not a fault: a planned drain leaves [`FaultSnapshot::is_clean`]
    /// true.
    pub nodes_drained: u64,
    /// Windows completed without every node's data (degraded answers).
    pub degraded_windows: u64,
}

impl FaultCounters {
    /// A fresh, shareable counter set.
    pub fn new_shared() -> Arc<FaultCounters> {
        Arc::new(FaultCounters::default())
    }

    /// Record one expired per-window deadline.
    #[inline]
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one retry message sent.
    #[inline]
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one duplicate message suppressed.
    #[inline]
    pub fn record_duplicate(&self) {
        self.duplicates_suppressed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one node declared dead.
    #[inline]
    pub fn record_node_dead(&self) {
        self.nodes_declared_dead.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one node drained cleanly (membership handoff, not a fault).
    #[inline]
    pub fn record_node_drained(&self) {
        self.nodes_drained.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one window completed degraded.
    #[inline]
    pub fn record_degraded_window(&self) {
        self.degraded_windows.fetch_add(1, Ordering::Relaxed);
    }

    /// Current totals.
    pub fn snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            timeouts: self.timeouts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            duplicates_suppressed: self.duplicates_suppressed.load(Ordering::Relaxed),
            nodes_declared_dead: self.nodes_declared_dead.load(Ordering::Relaxed),
            nodes_drained: self.nodes_drained.load(Ordering::Relaxed),
            degraded_windows: self.degraded_windows.load(Ordering::Relaxed),
        }
    }
}

impl FaultSnapshot {
    /// True when the run needed no fault handling at all. Clean drains are
    /// planned membership handoffs, so they do not count against this.
    pub fn is_clean(&self) -> bool {
        FaultSnapshot {
            nodes_drained: 0,
            ..*self
        } == FaultSnapshot::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = FaultCounters::default();
        assert!(c.snapshot().is_clean());
        c.record_timeout();
        c.record_timeout();
        c.record_retry();
        c.record_duplicate();
        c.record_node_dead();
        c.record_degraded_window();
        let s = c.snapshot();
        assert_eq!(
            s,
            FaultSnapshot {
                timeouts: 2,
                retries: 1,
                duplicates_suppressed: 1,
                nodes_declared_dead: 1,
                nodes_drained: 0,
                degraded_windows: 1,
            }
        );
        assert!(!s.is_clean());
    }

    #[test]
    fn clean_drains_do_not_dirty_the_snapshot() {
        let c = FaultCounters::default();
        c.record_node_drained();
        c.record_node_drained();
        let s = c.snapshot();
        assert_eq!(s.nodes_drained, 2);
        assert!(s.is_clean(), "a planned drain is not a fault");
    }

    #[test]
    fn shared_counters_are_thread_safe() {
        let c = FaultCounters::new_shared();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.record_retry();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.snapshot().retries, 4000);
    }
}
