//! Lock-free network accounting.
//!
//! Transports increment these counters on every frame they move; the
//! experiment harness reads snapshots to produce the paper's network-cost
//! figures (Figure 6). Counters are cheap enough to leave on in benchmarks
//! (relaxed atomics, one cache line of state).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cumulative traffic counters for one link or one node.
#[derive(Debug, Default)]
pub struct NetworkCounters {
    bytes: AtomicU64,
    messages: AtomicU64,
    events: AtomicU64,
}

/// A point-in-time copy of [`NetworkCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetworkSnapshot {
    /// Total encoded bytes.
    pub bytes: u64,
    /// Total protocol messages (frames).
    pub messages: u64,
    /// Total raw-event payloads carried (the paper's events-on-the-wire
    /// cost unit; synopses count the events they embed).
    pub events: u64,
}

impl NetworkCounters {
    /// A fresh, shareable counter set.
    pub fn new_shared() -> Arc<NetworkCounters> {
        Arc::new(NetworkCounters::default())
    }

    /// Record one sent frame of `bytes` encoded bytes carrying `events`
    /// event payloads.
    #[inline]
    pub fn record(&self, bytes: u64, events: u64) {
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.events.fetch_add(events, Ordering::Relaxed);
    }

    /// Current totals.
    pub fn snapshot(&self) -> NetworkSnapshot {
        NetworkSnapshot {
            bytes: self.bytes.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
            events: self.events.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.bytes.store(0, Ordering::Relaxed);
        self.messages.store(0, Ordering::Relaxed);
        self.events.store(0, Ordering::Relaxed);
    }
}

impl NetworkSnapshot {
    /// Difference `self − earlier`, saturating at zero.
    pub fn since(&self, earlier: &NetworkSnapshot) -> NetworkSnapshot {
        NetworkSnapshot {
            bytes: self.bytes.saturating_sub(earlier.bytes),
            messages: self.messages.saturating_sub(earlier.messages),
            events: self.events.saturating_sub(earlier.events),
        }
    }

    /// Sum of two snapshots (aggregating links).
    pub fn plus(&self, other: &NetworkSnapshot) -> NetworkSnapshot {
        NetworkSnapshot {
            bytes: self.bytes + other.bytes,
            messages: self.messages + other.messages,
            events: self.events + other.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let c = NetworkCounters::default();
        c.record(100, 5);
        c.record(50, 0);
        let s = c.snapshot();
        assert_eq!(
            s,
            NetworkSnapshot {
                bytes: 150,
                messages: 2,
                events: 5
            }
        );
    }

    #[test]
    fn reset_zeroes() {
        let c = NetworkCounters::default();
        c.record(10, 1);
        c.reset();
        assert_eq!(c.snapshot(), NetworkSnapshot::default());
    }

    #[test]
    fn snapshot_arithmetic() {
        let a = NetworkSnapshot {
            bytes: 100,
            messages: 10,
            events: 50,
        };
        let b = NetworkSnapshot {
            bytes: 40,
            messages: 4,
            events: 20,
        };
        assert_eq!(
            a.since(&b),
            NetworkSnapshot {
                bytes: 60,
                messages: 6,
                events: 30
            }
        );
        assert_eq!(b.since(&a), NetworkSnapshot::default()); // saturates
        assert_eq!(
            a.plus(&b),
            NetworkSnapshot {
                bytes: 140,
                messages: 14,
                events: 70
            }
        );
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let c = NetworkCounters::new_shared();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.record(3, 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.messages, 80_000);
        assert_eq!(s.bytes, 240_000);
        assert_eq!(s.events, 80_000);
    }
}
