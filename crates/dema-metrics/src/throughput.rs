//! Throughput measurement and the sustainable-throughput search.
//!
//! The paper measures *maximum sustainable throughput* (Karimov et al.,
//! ICDE '18): the highest offered event rate at which the system keeps up —
//! i.e. its backlog stays bounded over the measurement period. We reproduce
//! that with a driver-agnostic binary search over offered rates: the caller
//! supplies a probe closure that runs the system at a rate and reports
//! whether it sustained it.

use std::time::{Duration, Instant};

/// Simple events-over-wall-clock meter.
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    started: Instant,
    events: u64,
}

impl Default for ThroughputMeter {
    fn default() -> ThroughputMeter {
        ThroughputMeter::start()
    }
}

impl ThroughputMeter {
    /// Start measuring now.
    pub fn start() -> ThroughputMeter {
        ThroughputMeter {
            started: Instant::now(),
            events: 0,
        }
    }

    /// Add processed events.
    #[inline]
    pub fn add(&mut self, events: u64) {
        self.events += events;
    }

    /// Total events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Events per second over the elapsed time.
    pub fn events_per_second(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.events as f64 / secs
    }

    /// Events per second for an externally supplied duration (used when the
    /// workload is replayed in virtual time rather than wall-clock).
    pub fn events_per_virtual_second(&self, virtual_time: Duration) -> f64 {
        let secs = virtual_time.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.events as f64 / secs
    }
}

/// Binary-search the maximum sustainable offered rate in
/// `[min_rate, max_rate]` (events/s).
///
/// `probe(rate)` must run the system at `rate` and return `true` iff the
/// system sustained it (bounded backlog / processed everything in time).
/// The search assumes monotonicity — if a rate is sustained, every lower
/// rate is too — and narrows until the bracket is within `tolerance`
/// (relative, e.g. `0.05` for 5 %). Returns the highest sustained rate
/// found, or `None` if even `min_rate` is not sustainable.
pub fn sustainable_throughput<F>(
    min_rate: u64,
    max_rate: u64,
    tolerance: f64,
    mut probe: F,
) -> Option<u64>
where
    F: FnMut(u64) -> bool,
{
    assert!(min_rate > 0 && min_rate <= max_rate, "invalid rate bracket");
    assert!(tolerance > 0.0, "tolerance must be positive");
    if !probe(min_rate) {
        return None;
    }
    if probe(max_rate) {
        return Some(max_rate);
    }
    let (mut lo, mut hi) = (min_rate, max_rate); // probe(lo)=true, probe(hi)=false
    while (hi - lo) as f64 > tolerance * lo as f64 && hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if probe(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_counts_events() {
        let mut m = ThroughputMeter::start();
        m.add(500);
        m.add(250);
        assert_eq!(m.events(), 750);
        assert_eq!(m.events_per_virtual_second(Duration::from_secs(3)), 250.0);
    }

    #[test]
    fn meter_rate_uses_wall_clock() {
        let mut m = ThroughputMeter::start();
        m.add(1000);
        std::thread::sleep(Duration::from_millis(20));
        let r = m.events_per_second();
        assert!(r > 0.0 && r < 1000.0 / 0.02 * 1.5, "rate {r}");
    }

    #[test]
    fn meter_zero_duration_is_zero_rate() {
        let m = ThroughputMeter::start();
        assert_eq!(m.events_per_virtual_second(Duration::ZERO), 0.0);
    }

    #[test]
    fn search_finds_threshold() {
        // System sustains anything <= 123_456.
        let found = sustainable_throughput(1_000, 1_000_000, 0.01, |r| r <= 123_456).unwrap();
        assert!(found <= 123_456, "found {found}");
        assert!(
            found as f64 >= 123_456.0 * 0.98,
            "found {found} too far below"
        );
    }

    #[test]
    fn search_hits_exact_bounds() {
        assert_eq!(sustainable_throughput(10, 100, 0.01, |_| true), Some(100));
        assert_eq!(sustainable_throughput(10, 100, 0.01, |_| false), None);
        assert_eq!(sustainable_throughput(10, 100, 0.01, |r| r <= 10), Some(10));
    }

    #[test]
    fn search_probe_count_is_logarithmic() {
        let mut probes = 0;
        let _ = sustainable_throughput(1, 1_000_000_000, 0.01, |r| {
            probes += 1;
            r <= 500_000_000
        });
        assert!(probes < 50, "{probes} probes");
    }

    #[test]
    #[should_panic(expected = "invalid rate bracket")]
    fn search_rejects_bad_bracket() {
        let _ = sustainable_throughput(100, 10, 0.01, |_| true);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn search_rejects_bad_tolerance() {
        let _ = sustainable_throughput(1, 10, 0.0, |_| true);
    }
}
