//! Event-loop instrumentation for the reactor runtime (DESIGN.md §13).
//!
//! One [`ReactorStats`] instance is shared by every shard of a run (the
//! counters are lock-free atomics, like [`crate::NetworkCounters`]), so the
//! report sees the whole fleet's loop behavior: how many events each
//! polling sweep dispatched, how late timers fired relative to their
//! deadline, and how deep the ready queue got within a single sweep.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Lock-free reactor loop counters, shared across shards.
#[derive(Debug, Default)]
pub struct ReactorStats {
    /// Polling sweeps executed (idle sweeps included).
    ticks: AtomicU64,
    /// Events dispatched to handlers (readable, closed, timer, wake).
    events: AtomicU64,
    /// Timer events among `events`.
    timers: AtomicU64,
    /// Sum over all fired timers of (fire time − deadline), in µs.
    timer_lag_us: AtomicU64,
    /// Worst single-timer lag observed, in µs.
    max_timer_lag_us: AtomicU64,
    /// Deepest ready queue (events dispatched by one sweep) observed.
    max_ready_depth: AtomicU64,
}

impl ReactorStats {
    /// Fresh shared stats.
    pub fn new_shared() -> Arc<ReactorStats> {
        Arc::new(ReactorStats::default())
    }

    /// Record one polling sweep that dispatched `events` events, `timers`
    /// of which were timer fires.
    pub fn record_tick(&self, events: u64, timers: u64) {
        self.ticks.fetch_add(1, Ordering::Relaxed);
        self.events.fetch_add(events, Ordering::Relaxed);
        self.timers.fetch_add(timers, Ordering::Relaxed);
        self.max_ready_depth.fetch_max(events, Ordering::Relaxed);
    }

    /// Record one timer fire that ran `lag_us` µs behind its deadline.
    pub fn record_timer_lag(&self, lag_us: u64) {
        self.timer_lag_us.fetch_add(lag_us, Ordering::Relaxed);
        self.max_timer_lag_us.fetch_max(lag_us, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> ReactorSnapshot {
        ReactorSnapshot {
            ticks: self.ticks.load(Ordering::Relaxed),
            events: self.events.load(Ordering::Relaxed),
            timers: self.timers.load(Ordering::Relaxed),
            timer_lag_us: self.timer_lag_us.load(Ordering::Relaxed),
            max_timer_lag_us: self.max_timer_lag_us.load(Ordering::Relaxed),
            max_ready_depth: self.max_ready_depth.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`ReactorStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReactorSnapshot {
    /// Polling sweeps executed.
    pub ticks: u64,
    /// Events dispatched to handlers.
    pub events: u64,
    /// Timer events among `events`.
    pub timers: u64,
    /// Total timer lag (fire − deadline) in µs.
    pub timer_lag_us: u64,
    /// Worst single-timer lag in µs.
    pub max_timer_lag_us: u64,
    /// Deepest single-sweep ready queue.
    pub max_ready_depth: u64,
}

impl ReactorSnapshot {
    /// Mean events dispatched per sweep (0 when no sweeps ran).
    pub fn events_per_tick(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.events as f64 / self.ticks as f64
        }
    }

    /// Mean timer lag in µs (0 when no timers fired).
    pub fn mean_timer_lag_us(&self) -> f64 {
        if self.timers == 0 {
            0.0
        } else {
            self.timer_lag_us as f64 / self.timers as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_and_depth_accumulate() {
        let s = ReactorStats::default();
        s.record_tick(3, 1);
        s.record_tick(0, 0);
        s.record_tick(7, 2);
        let snap = s.snapshot();
        assert_eq!(snap.ticks, 3);
        assert_eq!(snap.events, 10);
        assert_eq!(snap.timers, 3);
        assert_eq!(snap.max_ready_depth, 7);
        assert!((snap.events_per_tick() - 10.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn timer_lag_tracks_sum_and_max() {
        let s = ReactorStats::default();
        s.record_timer_lag(40);
        s.record_timer_lag(10);
        s.record_tick(2, 2);
        let snap = s.snapshot();
        assert_eq!(snap.timer_lag_us, 50);
        assert_eq!(snap.max_timer_lag_us, 40);
        assert!((snap.mean_timer_lag_us() - 25.0).abs() < 1e-9);
    }
}
