//! Bounded interleaving explorer: stateless model checking over the real
//! engines.
//!
//! The explorer builds a real cluster — [`RootNode`], [`LocalStepper`]s,
//! Dema's responder — wired over step-driven mem links
//! ([`dema_net::step`]), and enumerates message-delivery orders with an
//! explicit depth-first search: each schedule is a sequence of *actions*
//! (close a local window, deliver or drop the head of one link's FIFO,
//! let the retry supervisor act), replayed from the initial state, and
//! checked against the declarative spec ([`crate::spec`]) as it runs.
//!
//! Per-link FIFO order is never violated — like real stream transports,
//! messages on one link can't overtake each other — so the schedule space
//! is exactly the set of interleavings *across* links. The optional
//! reduction (`dedup`) prunes a branch when its post-action state
//! fingerprint (per-receiver delivery histories, pending queue contents,
//! and producer progress) was already reached: deliveries on independent
//! links commute to the same fingerprint, so each Mazurkiewicz trace is
//! explored once — a DPOR-lite keyed on per-link FIFO independence.
//!
//! Checked on every explored path:
//!
//! * **spec legality** — every delivered message's variant is in the
//!   receiving role's `receives` set;
//! * **reply obligations** — a responder step whose trigger carries an
//!   [`crate::spec::Obligation`] (and whose precondition holds) must
//!   enqueue a reply synchronously;
//! * **no deadlock** — a path may only end with the root finished
//!   (fault-free always; faulty paths too when resilience is on, via
//!   death verdicts);
//! * **result stability** — on fault-free paths of exact engines, the
//!   final outcomes must be identical to the canonical schedule's;
//! * the `dema_core::invariant` audits, which run inside the engines and
//!   surface as errors.
//!
//! Faults are schedule choices: a `Drop` action discards the head of a
//! link, consuming one unit of `drop_budget` — the explorer enumerates
//! *which* message dies, where `FaultPlan` seeds only sample it.
//!
//! Membership churn is a *configuration* choice: a non-empty
//! [`MembershipPlan`] compiles to the same [`EpochLedger`] the runner
//! uses, joiners start at their boundary (announcing with `JoinRequest`),
//! leavers end at theirs (announcing with `LeaveAnnounce`), and the DFS
//! then enumerates every interleaving of the join/drain handshake against
//! in-flight windows, retries, and candidate fetches.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dema_cluster::config::{EngineKind, MembershipPlan, Resilience};
use dema_cluster::engines::{descriptor, validate, ResilienceCtx};
use dema_cluster::local::{new_close_times, responder_step, CloseTimes, LocalShared, LocalStepper};
use dema_cluster::membership::EpochLedger;
use dema_cluster::report::WindowOutcome;
use dema_cluster::root::RootNode;
use dema_cluster::ClusterError;
use dema_core::event::{Event, NodeId};
use dema_core::quantile::Quantile;
use dema_metrics::{FaultCounters, NetworkCounters};
use dema_net::reactor::ReactorEvent;
use dema_net::step::{step_link, StepQueue, StepSender};
use dema_wire::Message;

use crate::spec;

/// A deliberate bug injected into the system under test, to prove the
/// checker catches the corresponding spec violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutation {
    /// Faithful engines.
    #[default]
    None,
    /// The responder silently ignores `ResendWindow` NACKs — its reply
    /// obligation (replay the cached uplink message) is skipped. The
    /// obligation check must flag every path that delivers a NACK while
    /// the sent-cache holds the window.
    SkipResendReply,
}

/// What to explore and how hard.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Engine under test.
    pub engine: EngineKind,
    /// Leaf nodes.
    pub n_locals: usize,
    /// Windows each local closes.
    pub windows_per_local: u64,
    /// Events per local window (deterministically generated from `seed`).
    pub events_per_window: u64,
    /// The quantile the root computes.
    pub quantile: Quantile,
    /// Input-generation seed.
    pub seed: u64,
    /// Schedule budget: stop after this many explored schedules
    /// (completed + pruned leaves).
    pub max_schedules: usize,
    /// Per-path step bound (safety net; paths terminate naturally).
    pub max_steps: usize,
    /// How many messages a single schedule may drop. Non-zero turns fault
    /// injection into schedule choices.
    pub drop_budget: usize,
    /// Retry/liveness parameters. `None` explores the seed (fail-fast)
    /// protocol; `Some` enables supervisor `Tick` actions and requires
    /// every path — including faulty ones — to terminate finished.
    pub resilience: Option<Resilience>,
    /// Enable the fingerprint reduction. Off, every explored schedule is
    /// a fully executed distinct delivery order; on, states reached
    /// before are pruned (DPOR-lite).
    pub dedup: bool,
    /// Deliberate bug to inject.
    pub mutation: Mutation,
    /// Staged membership changes (epoch-based join/leave/drain). Empty —
    /// the default — explores fixed membership; non-empty plans slice
    /// each local's windows to its epochs and put the join/drain
    /// handshake itself on the schedule. Dema engine only.
    pub membership: MembershipPlan,
}

impl ExploreConfig {
    /// A fault-free smoke configuration over the Dema engine: `n_locals`
    /// locals, `windows` windows of `events` events, fixed γ 4, schedule
    /// budget `budget`.
    pub fn smoke(
        n_locals: usize,
        windows: u64,
        events: u64,
        budget: usize,
    ) -> Result<ExploreConfig, ClusterError> {
        Ok(ExploreConfig {
            engine: EngineKind::Dema {
                gamma: dema_cluster::GammaMode::Fixed(4),
                strategy: dema_core::selector::SelectionStrategy::WindowCut,
            },
            n_locals,
            windows_per_local: windows,
            events_per_window: events,
            quantile: Quantile::new(0.5)?,
            seed: 0xD37A_FA17,
            max_schedules: budget,
            max_steps: 10_000,
            drop_budget: 0,
            resilience: None,
            dedup: false,
            mutation: Mutation::None,
            membership: MembershipPlan::default(),
        })
    }
}

/// What an exploration found.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Distinct schedules fully executed and checked end-to-end.
    pub schedules: usize,
    /// Branches cut by the fingerprint reduction (their suffix state was
    /// already explored from an equivalent interleaving).
    pub pruned: usize,
    /// Distinct states the reduction recorded (0 when `dedup` is off).
    pub distinct_states: usize,
    /// Longest explored path, in actions.
    pub deepest: usize,
    /// Paths that ended with the root unfinished on a *faulty*
    /// non-resilient schedule — expected degradation, not a violation.
    pub stuck_faulty: usize,
    /// Spec violations found (legality, obligations, deadlock, result
    /// divergence), capped at [`MAX_VIOLATIONS`] entries.
    pub violations: Vec<String>,
    /// `true` when the whole schedule tree was explored within budget.
    pub exhausted: bool,
}

/// Cap on recorded violation strings (the count keeps climbing past it).
pub const MAX_VIOLATIONS: usize = 64;

impl ExploreReport {
    /// No violations of any kind.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One scheduler choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Local `i` closes its next window (or sends `StreamEnd`).
    Step(usize),
    /// Deliver the head of local `i`'s uplink to the root.
    DeliverUp(usize),
    /// Deliver the head of the root→`i` control link to the responder.
    DeliverCtl(usize),
    /// Drop the head of local `i`'s uplink (costs one drop budget).
    DropUp(usize),
    /// Drop the head of the root→`i` control link.
    DropCtl(usize),
    /// Let the retry supervisor act (resilient runs; enabled only when
    /// nothing else is — timeouts fire when the system is otherwise
    /// stuck, which is exactly when they matter).
    Tick,
}

/// The role a reactor-event injection targets. The explorer hosts the
/// same state machines the runner does, minus the I/O: a schedule action
/// names the event, `Target` names the role it lands on.
#[derive(Debug, Clone, Copy)]
enum Target {
    /// The root's event loop.
    Root,
    /// Local `i`'s producer role.
    Local(usize),
    /// Local `i`'s responder role.
    Responder(usize),
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_mix(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_mix_u64(h: u64, v: u64) -> u64 {
    fnv_mix(h, &v.to_le_bytes())
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic inputs: `inputs[local][window]` events.
fn gen_inputs(cfg: &ExploreConfig) -> Vec<Vec<Vec<Event>>> {
    let mut rng = cfg.seed;
    (0..cfg.n_locals)
        .map(|node| {
            (0..cfg.windows_per_local)
                .map(|w| {
                    (0..cfg.events_per_window)
                        .map(|j| {
                            let r = splitmix64(&mut rng);
                            #[allow(clippy::cast_possible_wrap)]
                            let value = (r % 10_001) as i64 - 5_000;
                            let id = ((node as u64) << 48) | (w << 24) | j;
                            Event::new(value, w * 1_000 + j, id)
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// The system under test for one path replay. Borrows the per-replay
/// `LocalShared` cells (the steppers and responder share them, as in the
/// threaded runner).
struct System<'a> {
    root: RootNode,
    steppers: Vec<LocalStepper<'a>>,
    up_tx: Vec<StepSender>,
    up_q: Vec<StepQueue>,
    ctl_q: Vec<StepQueue>,
    shareds: &'a [Arc<LocalShared>],
    /// Variant names the root may receive (engine root roles ∪ shell).
    root_allowed: HashSet<&'static str>,
    /// Variant names the responder may receive.
    responder_allowed: HashSet<&'static str>,
    /// Obligations by trigger variant (from the responder role's spec).
    obligations: Vec<(&'static str, spec::Obligation)>,
    /// `true` when the root-shell spec obliges a `JoinAccept` reply to
    /// every delivered `JoinRequest`.
    root_shell_join_owed: bool,
    resilient: bool,
    drop_budget: usize,
    drops_used: usize,
    steps: usize,
    produced: Vec<u64>,
    /// Rolling per-receiver delivery-history hashes: index 0 the root,
    /// then one per responder.
    history: Vec<u64>,
    tick_wedged: bool,
    violations: Vec<String>,
}

fn role_receives(name: &str) -> &'static [&'static str] {
    spec::role(name).map_or(&[], |r| r.receives)
}

impl<'a> System<'a> {
    fn new(
        cfg: &ExploreConfig,
        shareds: &'a [Arc<LocalShared>],
        inputs: &[Vec<Vec<Event>>],
    ) -> Result<System<'a>, ClusterError> {
        let desc = descriptor(cfg.engine);
        let has_ctl = desc.control_plane || cfg.resilience.is_some();
        let counters = NetworkCounters::new_shared();

        let mut up_tx = Vec::new();
        let mut up_q = Vec::new();
        let mut ctl_q = Vec::new();
        let mut control: Vec<Box<dyn dema_net::MsgSender>> = Vec::new();
        for _ in 0..cfg.n_locals {
            let (tx, q) = step_link(Arc::clone(&counters));
            up_tx.push(tx);
            up_q.push(q);
            if has_ctl {
                let (ctx, cq) = step_link(Arc::clone(&counters));
                control.push(Box::new(ctx));
                ctl_q.push(cq);
            }
        }

        let close_times: CloseTimes = new_close_times();
        let resilience = cfg.resilience.map(|config| ResilienceCtx {
            config,
            counters: FaultCounters::new_shared(),
        });
        let mut root = RootNode::with_extra_quantiles(
            cfg.quantile,
            Vec::new(),
            cfg.engine,
            cfg.n_locals,
            cfg.windows_per_local,
            control,
            close_times,
            resilience,
            dema_cluster::root::PIPELINE_DEPTH,
        );
        let ledger = if cfg.membership.is_empty() {
            None
        } else {
            root = root.with_membership(&cfg.membership)?;
            Some(EpochLedger::from_plan(cfg.n_locals, &cfg.membership)?)
        };

        // Each local owns the slice of global windows its epochs cover:
        // a joiner starts at its boundary (its first step announces the
        // join), a leaver stops short of its boundary (its last step
        // announces the drain in place of `StreamEnd`).
        let steppers = inputs
            .iter()
            .enumerate()
            .map(|(i, windows)| {
                let node = i as u32;
                let first = ledger.as_ref().map_or(0, |l| l.join_window(node));
                let leave = ledger.as_ref().and_then(|l| l.leave_window(node));
                let until = leave.unwrap_or(cfg.windows_per_local);
                let mine = windows[first as usize..until as usize].to_vec();
                let mut stepper = LocalStepper::new(NodeId(node), mine, cfg.engine, &shareds[i])
                    .with_first_window(first);
                if let Some(boundary) = leave {
                    stepper = stepper.with_leave_window(boundary);
                }
                stepper
            })
            .collect();

        let mut root_allowed: HashSet<&'static str> = HashSet::new();
        for role in desc.roles {
            if role.ends_with("-root") {
                root_allowed.extend(role_receives(role).iter().copied());
            }
        }
        root_allowed.extend(role_receives("root-shell").iter().copied());

        let mut responder_allowed: HashSet<&'static str> = HashSet::new();
        let mut obligations = Vec::new();
        if has_ctl {
            // The generic responder is Dema's: it serves the slice store
            // and the sent-cache for every engine on resilient runs.
            if let Some(r) = spec::role("dema-responder") {
                responder_allowed.extend(r.receives.iter().copied());
                for tr in r.transitions {
                    if let Some(ob) = tr.obligation {
                        obligations.push((tr.on, ob));
                    }
                }
            }
        }

        let root_shell_join_owed = spec::role("root-shell").is_some_and(|r| {
            r.transitions
                .iter()
                .any(|tr| tr.on == "JoinRequest" && tr.obligation.is_some())
        });

        Ok(System {
            root,
            steppers,
            up_tx,
            up_q,
            ctl_q,
            shareds,
            root_allowed,
            responder_allowed,
            obligations,
            root_shell_join_owed,
            resilient: cfg.resilience.is_some(),
            drop_budget: cfg.drop_budget,
            drops_used: 0,
            steps: 0,
            produced: vec![0; cfg.n_locals],
            history: vec![FNV_OFFSET; 1 + cfg.n_locals],
            tick_wedged: false,
            violations: Vec::new(),
        })
    }

    /// Enabled actions in exploration order: drops (when budget allows),
    /// deliveries, producer steps, then — only when nothing else can
    /// move — a supervisor tick. The canonical reference schedule runs
    /// with drops disabled, so its index-0 choice is always a delivery
    /// or a step.
    fn enabled(&self) -> Vec<Action> {
        let mut acts = Vec::new();
        // Drops first: DFS then explores fault branches early, so small
        // schedule budgets still cover them. The canonical run disables
        // drops, so its first-choice schedule stays fault-free.
        if self.drops_used < self.drop_budget {
            // StreamEnd is exempt from drops: losing it models process
            // death (the chaos suite's domain, via liveness verdicts on
            // *window* deadlines), not message loss — no retry deadline
            // guards it, so dropping it would wedge every path.
            for (i, q) in self.up_q.iter().enumerate() {
                if q.peek()
                    .is_some_and(|m| !matches!(m, Message::StreamEnd { .. }))
                {
                    acts.push(Action::DropUp(i));
                }
            }
            for (i, q) in self.ctl_q.iter().enumerate() {
                if !q.is_empty() {
                    acts.push(Action::DropCtl(i));
                }
            }
        }
        for (i, q) in self.up_q.iter().enumerate() {
            if !q.is_empty() {
                acts.push(Action::DeliverUp(i));
            }
        }
        for (i, q) in self.ctl_q.iter().enumerate() {
            if !q.is_empty() {
                acts.push(Action::DeliverCtl(i));
            }
        }
        for (i, s) in self.steppers.iter().enumerate() {
            if !s.is_done() {
                acts.push(Action::Step(i));
            }
        }
        if acts.is_empty() && self.resilient && !self.tick_wedged && !self.root.finished() {
            acts.push(Action::Tick);
        }
        acts
    }

    fn violation(&mut self, msg: String) {
        self.violations.push(msg);
    }

    /// Execute one schedule action by translating it into the reactor
    /// event it corresponds to in the hosted runtime, then injecting that
    /// event into the owning role. Drops are scheduler-level faults — the
    /// message dies on the link, no role sees an event.
    fn execute(&mut self, action: Action, mutation: Mutation) -> Result<(), ClusterError> {
        self.steps += 1;
        let (target, ev) = match action {
            // A producer step is what a shard's `Wake` delivers to a
            // hosted local role.
            Action::Step(i) => (Target::Local(i), ReactorEvent::Wake),
            Action::DeliverUp(i) => {
                let Some(msg) = self.up_q[i].pop() else {
                    return Ok(());
                };
                (Target::Root, ReactorEvent::Readable { link: i, msg })
            }
            Action::DeliverCtl(i) => {
                let Some(msg) = self.ctl_q[i].pop() else {
                    return Ok(());
                };
                (
                    Target::Responder(i),
                    ReactorEvent::Readable { link: 0, msg },
                )
            }
            Action::DropUp(i) => {
                self.up_q[i].pop();
                self.drops_used += 1;
                return Ok(());
            }
            Action::DropCtl(i) => {
                self.ctl_q[i].pop();
                self.drops_used += 1;
                return Ok(());
            }
            // The supervisor acting is the root's retry deadline firing.
            Action::Tick => (Target::Root, ReactorEvent::Timer { token: 0 }),
        };
        self.inject(target, ev, mutation)
    }

    /// Deliver one reactor event to one role — the explorer's in-process
    /// analogue of a reactor sweep dispatching to a hosted role.
    fn inject(
        &mut self,
        target: Target,
        ev: ReactorEvent,
        mutation: Mutation,
    ) -> Result<(), ClusterError> {
        match (target, ev) {
            (Target::Local(i), ReactorEvent::Wake) => {
                self.steppers[i].step(&mut self.up_tx[i])?;
                self.produced[i] += 1;
                Ok(())
            }
            (Target::Root, ReactorEvent::Readable { link, msg }) => {
                let name = msg.variant_name();
                if !self.root_allowed.contains(name) {
                    self.violation(format!(
                        "spec violation: root received {name} from local {link}, \
                         not in its receive set"
                    ));
                }
                self.history[0] = fnv_mix(self.history[0], &msg.to_bytes());
                // Root-shell reply obligation: the spec's JoinRequest
                // transition owes the joiner a synchronous JoinAccept (the
                // live-γ handoff) on its control link.
                let join_watch = match &msg {
                    Message::JoinRequest { node, .. } if self.root_shell_join_owed => {
                        let i = node.0 as usize;
                        self.ctl_q.get(i).map(|q| (i, q.len()))
                    }
                    _ => None,
                };
                self.root.handle(msg)?;
                if let Some((i, before)) = join_watch {
                    if self.ctl_q[i].len() == before {
                        self.violation(format!(
                            "obligation violated: root handled JoinRequest from \
                             local {i} while owing JoinAccept, but enqueued nothing"
                        ));
                    }
                }
                Ok(())
            }
            (Target::Responder(i), ReactorEvent::Readable { msg, .. }) => {
                self.deliver_ctl(i, msg, mutation)
            }
            (Target::Root, ReactorEvent::Timer { .. }) => self.tick(),
            (target, ev) => Err(ClusterError::Protocol(format!(
                "explore: unroutable injection {ev:?} for {target:?}"
            ))),
        }
    }

    fn deliver_ctl(
        &mut self,
        i: usize,
        msg: Message,
        mutation: Mutation,
    ) -> Result<(), ClusterError> {
        let name = msg.variant_name();
        if !self.responder_allowed.contains(name) {
            self.violation(format!(
                "spec violation: responder {i} received {name}, not in its receive set"
            ));
        }
        self.history[1 + i] = fnv_mix(self.history[1 + i], &msg.to_bytes());
        // Spec obligation: does handling this trigger owe a synchronous
        // reply? Evaluate the precondition against the node's real state.
        let owed = self
            .obligations
            .iter()
            .find(|(on, _)| *on == name)
            .filter(|(_, ob)| {
                let window = match &msg {
                    Message::CandidateRequest { window, .. }
                    | Message::CandidateRetry { window, .. }
                    | Message::ResendWindow { window, .. } => window.0,
                    _ => return matches!(ob.when, spec::Condition::Always),
                };
                match ob.when {
                    spec::Condition::Always => true,
                    spec::Condition::WindowStored => {
                        self.shareds[i].store.lock().contains_key(&window)
                    }
                    spec::Condition::WindowCached => {
                        self.shareds[i].sent.lock().contains_key(&window)
                    }
                }
            })
            .map(|(on, ob)| (*on, ob.replies));
        let before = self.up_q[i].len();
        let skipped =
            mutation == Mutation::SkipResendReply && matches!(msg, Message::ResendWindow { .. });
        if !skipped {
            // ResponderStatus::Stop (a DrainComplete retiring the role)
            // needs no handling here: the root stops addressing departed
            // nodes, so a stopped responder's queue simply runs dry.
            responder_step(NodeId(i as u32), msg, &mut self.up_tx[i], &self.shareds[i])?;
        }
        if let Some((on, replies)) = owed {
            if self.up_q[i].len() == before {
                self.violation(format!(
                    "obligation violated: responder {i} handled {on} while owing \
                     one of {replies:?}, but enqueued nothing"
                ));
            }
        }
        Ok(())
    }

    /// Let the supervisor act: spin `root.tick()` until it produces
    /// progress (a NACK in some control queue, a death verdict finishing
    /// the run) or visibly wedges.
    fn tick(&mut self) -> Result<(), ClusterError> {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            self.root.tick()?;
            if self.root.finished() || self.ctl_q.iter().any(|q| !q.is_empty()) {
                return Ok(());
            }
            if Instant::now() > deadline {
                self.tick_wedged = true;
                self.violation(
                    "deadlock: resilient supervisor made no progress for 10s".to_string(),
                );
                return Ok(());
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// State fingerprint: per-receiver delivery histories (order within a
    /// receiver is real state; order across receivers is not), pending
    /// queue contents, producer progress, and the drop count. Two
    /// interleavings that only commute independent per-link deliveries
    /// collapse to the same fingerprint.
    fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for &hist in &self.history {
            h = fnv_mix_u64(h, hist);
        }
        for &p in &self.produced {
            h = fnv_mix_u64(h, p);
        }
        h = fnv_mix_u64(h, self.drops_used as u64);
        for q in self.up_q.iter().chain(self.ctl_q.iter()) {
            let mut qh = FNV_OFFSET;
            let mut idx = 0usize;
            while let Some(m) = q.nth(idx) {
                qh = fnv_mix(qh, &m.to_bytes());
                idx += 1;
            }
            h = fnv_mix_u64(h, qh);
        }
        h
    }

    /// Path-end check; returns outcomes when the root finished.
    fn finish(mut self, faulty: bool) -> (Vec<String>, Option<Vec<WindowOutcome>>, bool) {
        let finished = self.root.finished();
        if !finished {
            if !faulty {
                self.violations.push(
                    "deadlock: schedule exhausted with the root unfinished on a \
                     fault-free path"
                        .to_string(),
                );
            } else if self.resilient && !self.tick_wedged {
                self.violations
                    .push("deadlock: resilient faulty path terminated unfinished".to_string());
            }
        }
        let outcomes = finished.then(|| self.root.into_results().0);
        (self.violations, outcomes, finished)
    }
}

/// The comparable signature of a finished run: per window, the value,
/// extra values, and the global window size. Latency and candidate
/// accounting are schedule-dependent by design and excluded.
fn outcome_sig(outcomes: &[WindowOutcome]) -> Vec<(u64, Option<i64>, Vec<i64>, u64)> {
    outcomes
        .iter()
        .map(|o| (o.window.0, o.value, o.extra_values.clone(), o.total_events))
        .collect()
}

fn make_shareds(cfg: &ExploreConfig) -> Vec<Arc<LocalShared>> {
    let gamma = dema_cluster::engines::initial_gamma(cfg.engine);
    (0..cfg.n_locals)
        .map(|_| {
            if cfg.resilience.is_some() {
                LocalShared::resilient(gamma)
            } else {
                LocalShared::new(gamma)
            }
        })
        .collect()
}

struct Frame {
    actions: Vec<Action>,
    next: usize,
}

/// Why [`drive`] stopped extending a schedule.
enum DriveEnd {
    /// No enabled actions remain — a complete schedule.
    Leaf,
    /// The fingerprint reduction cut the branch (its state was reached
    /// before via an equivalent interleaving).
    Pruned,
    /// The per-path step bound hit before the schedule completed.
    StepBound,
}

/// THE schedule drive loop — shared by the canonical reference run and
/// every DFS replay. Replays the prefix already chosen on `stack` (each
/// frame's `next` action), then extends first-choice-first to a leaf,
/// pushing one fresh frame per extension step so the caller can backtrack
/// to unexplored siblings. With `visited`, each post-injection state
/// fingerprint is recorded and a revisit prunes the branch.
fn drive(
    sys: &mut System,
    mutation: Mutation,
    max_steps: usize,
    stack: &mut Vec<Frame>,
    mut visited: Option<&mut HashSet<u64>>,
) -> Result<DriveEnd, ClusterError> {
    for f in stack.iter() {
        sys.execute(f.actions[f.next], mutation)?;
    }
    loop {
        let acts = sys.enabled();
        if acts.is_empty() {
            return Ok(DriveEnd::Leaf);
        }
        if sys.steps >= max_steps {
            return Ok(DriveEnd::StepBound);
        }
        let first = acts[0];
        stack.push(Frame {
            actions: acts,
            next: 0,
        });
        sys.execute(first, mutation)?;
        if let Some(v) = visited.as_deref_mut() {
            if !v.insert(sys.fingerprint()) {
                return Ok(DriveEnd::Pruned);
            }
        }
    }
}

/// Explore the schedule space of `cfg` and check every path.
///
/// # Errors
/// Configuration errors and engine failures that abort exploration (a
/// spec violation is a *finding*, reported in the result, not an error).
pub fn explore(cfg: &ExploreConfig) -> Result<ExploreReport, ClusterError> {
    validate(cfg.engine)?;
    if cfg.n_locals == 0 || cfg.max_schedules == 0 {
        return Err(ClusterError::Protocol(
            "explore: need at least one local and a non-zero schedule budget".to_string(),
        ));
    }
    let inputs = gen_inputs(cfg);
    let exact = descriptor(cfg.engine).exact;

    // Canonical schedule: always the first enabled action, faults and
    // mutations off. Its outcomes are the reference every fault-free
    // path must reproduce bit-for-bit (exact engines).
    let reference = {
        let mut canon = cfg.clone();
        canon.drop_budget = 0;
        let shareds = make_shareds(&canon);
        let mut sys = System::new(&canon, &shareds, &inputs)?;
        // The canonical run is the degenerate drive: empty prefix, no
        // reduction, always the first choice; its frames are discarded.
        let mut scratch = Vec::new();
        if let DriveEnd::StepBound =
            drive(&mut sys, Mutation::None, cfg.max_steps, &mut scratch, None)?
        {
            return Err(ClusterError::Protocol(
                "explore: canonical schedule exceeded max_steps".to_string(),
            ));
        }
        let (violations, outcomes, finished) = sys.finish(false);
        if !finished || !violations.is_empty() {
            return Err(ClusterError::Protocol(format!(
                "explore: canonical schedule failed: {violations:?}"
            )));
        }
        #[allow(clippy::unwrap_used)] // guarded by `finished` above
        outcome_sig(&outcomes.unwrap())
    };

    let mut report = ExploreReport::default();
    let mut total_violations = 0usize;
    let mut visited: HashSet<u64> = HashSet::new();
    let mut stack: Vec<Frame> = Vec::new();

    'search: loop {
        if report.schedules + report.pruned >= cfg.max_schedules {
            break;
        }
        // Stateless replay: rebuild the system, then the shared drive
        // loop re-runs the chosen prefix and extends it to a leaf.
        let shareds = make_shareds(cfg);
        let mut sys = System::new(cfg, &shareds, &inputs)?;
        let end = drive(
            &mut sys,
            cfg.mutation,
            cfg.max_steps,
            &mut stack,
            cfg.dedup.then_some(&mut visited),
        )?;
        if let DriveEnd::StepBound = end {
            sys.violation(format!("path exceeded max_steps ({})", cfg.max_steps));
        }
        let pruned_leaf = matches!(end, DriveEnd::Pruned);
        report.deepest = report.deepest.max(sys.steps);
        let faulty = sys.drops_used > 0;
        let resilient = sys.resilient;
        if pruned_leaf {
            report.pruned += 1;
            // A pruned leaf's own prefix may still have found violations.
            for v in sys.violations.drain(..) {
                total_violations += 1;
                if report.violations.len() < MAX_VIOLATIONS {
                    report.violations.push(v);
                }
            }
        } else {
            report.schedules += 1;
            let (violations, outcomes, finished) = sys.finish(faulty);
            if !finished && faulty && !resilient {
                report.stuck_faulty += 1;
            }
            for v in violations {
                total_violations += 1;
                if report.violations.len() < MAX_VIOLATIONS {
                    report.violations.push(v);
                }
            }
            if let Some(outcomes) = outcomes {
                if !faulty && exact && outcome_sig(&outcomes) != reference {
                    total_violations += 1;
                    if report.violations.len() < MAX_VIOLATIONS {
                        report.violations.push(
                            "result divergence: fault-free schedule produced outcomes \
                             different from the canonical run"
                                .to_string(),
                        );
                    }
                }
            }
        }
        // Backtrack to the next unexplored sibling.
        loop {
            let Some(top) = stack.last_mut() else {
                report.exhausted = true;
                break 'search;
            };
            top.next += 1;
            if top.next < top.actions.len() {
                break;
            }
            stack.pop();
        }
    }
    report.distinct_states = visited.len();
    let _ = total_violations;
    Ok(report)
}
