//! The declarative protocol specification: one state machine per role.
//!
//! This module is **pure data** — no dependencies, `const` everything — so
//! `dema-lint` can consume it without pulling in the cluster runtime, and
//! the explorer can interpret the same tables dynamically. Message names
//! are `dema_wire::Message` variant names; the spec's own test suite
//! cross-checks every name against `dema_wire::TAGS`, so a renamed or
//! removed wire variant breaks the spec at test time.
//!
//! Three consumers read these tables:
//!
//! * **lint R6** — for every role, each variant in `receives` must be
//!   matched (lexically, in masked non-test code) by the role's source
//!   file, and the file must mention no variant outside
//!   `receives ∪ sends` of the roles it hosts. Deleting a match arm or
//!   handling a forbidden tag both fail.
//! * **lint R7** — every [`Transition`] must be referenced by a test: some
//!   file's test code mentions both the trigger and the reply variant.
//! * **`crate::explore`** — delivery legality (an incoming message whose
//!   variant is not in the receiving role's `receives` is a spec
//!   violation) and reply obligations, checked on every explored path.
//!
//! Triggers starting with `'@'` are *pseudo-events* (a window closing, a
//! deadline expiring, end of stream) rather than wire messages; they have
//! no receive legality and R7 only requires their reply to be tested.

/// Marks a transition trigger as a pseudo-event instead of a wire message.
pub const PSEUDO_PREFIX: char = '@';

/// When a reply obligation applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Condition {
    /// The reply must always be sent.
    Always,
    /// The reply is owed iff the node's slice store holds the window
    /// (Dema candidate serving).
    WindowStored,
    /// The reply is owed iff the node's sent-cache holds the window's
    /// uplink message (`ResendWindow` replay); a cache miss makes silence
    /// legal — the root's retry budget, and ultimately a death verdict,
    /// covers the window.
    WindowCached,
}

/// A synchronous reply obligation: handling the trigger must enqueue one
/// of `replies` whenever `when` holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Obligation {
    /// Acceptable reply variants (any one discharges the obligation).
    pub replies: &'static [&'static str],
    /// Precondition under which the reply is owed.
    pub when: Condition,
}

/// One legal state-machine edge of a role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// State the role must be in.
    pub from: &'static str,
    /// Incoming `Message` variant name, or an `'@'`-prefixed pseudo-event.
    pub on: &'static str,
    /// State after the transition.
    pub to: &'static str,
    /// The principal variant this transition may emit (`None` for pure
    /// state updates). Forms the R7 "tag pair" together with `on`.
    pub reply: Option<&'static str>,
    /// Synchronous reply obligation, if any.
    pub obligation: Option<Obligation>,
}

/// The state machine of one protocol role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoleSpec {
    /// Role name; engines declare the roles they implement in
    /// `engines::REGISTRY` by these names.
    pub name: &'static str,
    /// Repo-relative source-file suffix hosting the role's match arms
    /// (what lint R6 scans).
    pub file: &'static str,
    /// Declared states; every transition endpoint must be one of these.
    pub states: &'static [&'static str],
    /// Wire variants this role may legally receive. Exactly the set of
    /// non-pseudo transition triggers.
    pub receives: &'static [&'static str],
    /// Wire variants this role may legally send.
    pub sends: &'static [&'static str],
    /// The legal edges.
    pub transitions: &'static [Transition],
}

/// The whole protocol: every role of the cluster.
#[derive(Debug, Clone, Copy)]
pub struct ProtocolSpec {
    /// All roles. Engine-owned roles are referenced from
    /// `engines::REGISTRY`; `relay`, `supervisor`, `root-shell` and
    /// `local-shell` belong to the shared shells.
    pub roles: &'static [RoleSpec],
}

const fn t(
    from: &'static str,
    on: &'static str,
    to: &'static str,
    reply: Option<&'static str>,
) -> Transition {
    Transition {
        from,
        on,
        to,
        reply,
        obligation: None,
    }
}

/// The Dema cluster protocol.
pub static SPEC: ProtocolSpec = ProtocolSpec {
    roles: &[
        // ── Dema: the only engine with a calculation step ───────────────
        RoleSpec {
            name: "dema-root",
            file: "dema-cluster/src/engines/dema.rs",
            states: &["ingest", "fetch"],
            receives: &["SynopsisBatch", "CandidateReply"],
            sends: &[
                "CandidateRequest",
                "GammaUpdate",
                "ResendWindow",
                "CandidateRetry",
            ],
            transitions: &[
                // Stage 1: synopses accumulate until every live local
                // reported, then the window cut is identified and the
                // candidate requests go out.
                t("ingest", "SynopsisBatch", "ingest", None),
                t("ingest", "SynopsisBatch", "fetch", Some("CandidateRequest")),
                // Stage 2: replies accumulate; the last one resolves the
                // window and (adaptive mode) pushes a new γ.
                t("fetch", "CandidateReply", "fetch", None),
                t("fetch", "CandidateReply", "ingest", Some("GammaUpdate")),
                // Supervisor expiries NACK the stage the window is stuck in.
                t("ingest", "@timeout", "ingest", Some("ResendWindow")),
                t("fetch", "@timeout", "fetch", Some("CandidateRetry")),
            ],
        },
        RoleSpec {
            name: "dema-local",
            file: "dema-cluster/src/engines/dema.rs",
            states: &["streaming"],
            receives: &[],
            sends: &["SynopsisBatch"],
            transitions: &[t(
                "streaming",
                "@window",
                "streaming",
                Some("SynopsisBatch"),
            )],
        },
        RoleSpec {
            name: "dema-responder",
            file: "dema-cluster/src/engines/dema.rs",
            states: &["serving", "drained"],
            receives: &[
                "CandidateRequest",
                "CandidateRetry",
                "ResendWindow",
                "GammaUpdate",
                "JoinAccept",
                "EpochSwitch",
                "DrainComplete",
            ],
            sends: &["CandidateReply", "SynopsisBatch", "StreamEnd"],
            transitions: &[
                Transition {
                    from: "serving",
                    on: "CandidateRequest",
                    to: "serving",
                    reply: Some("CandidateReply"),
                    obligation: Some(Obligation {
                        replies: &["CandidateReply"],
                        when: Condition::WindowStored,
                    }),
                },
                Transition {
                    from: "serving",
                    on: "CandidateRetry",
                    to: "serving",
                    reply: Some("CandidateReply"),
                    obligation: Some(Obligation {
                        replies: &["CandidateReply"],
                        when: Condition::WindowStored,
                    }),
                },
                // A ResendWindow NACK replays the cached uplink message —
                // a synopsis batch, or the StreamEnd marker for the
                // stream-end pseudo-window. Silence is legal only on a
                // cache miss (then the root's death verdict closes the
                // window instead).
                Transition {
                    from: "serving",
                    on: "ResendWindow",
                    to: "serving",
                    reply: Some("SynopsisBatch"),
                    obligation: Some(Obligation {
                        replies: &["SynopsisBatch", "StreamEnd"],
                        when: Condition::WindowCached,
                    }),
                },
                t("serving", "GammaUpdate", "serving", None),
                // Membership control is informational until the drain
                // release: the responder notes the accepted join and the
                // epoch boundary, and keeps serving.
                t("serving", "JoinAccept", "serving", None),
                t("serving", "EpochSwitch", "serving", None),
                // The root confirmed every window this node owed is
                // resolved: acknowledge with the StreamEnd marker and stop
                // serving. Unlike the replay obligations above this one is
                // unconditional — a drained responder always signs off.
                Transition {
                    from: "serving",
                    on: "DrainComplete",
                    to: "drained",
                    reply: Some("StreamEnd"),
                    obligation: Some(Obligation {
                        replies: &["StreamEnd"],
                        when: Condition::Always,
                    }),
                },
            ],
        },
        // ── Single-stage engines: one uplink variant each ───────────────
        RoleSpec {
            name: "centralized-root",
            file: "dema-cluster/src/engines/centralized.rs",
            states: &["collect"],
            receives: &["EventBatch"],
            sends: &[],
            transitions: &[t("collect", "EventBatch", "collect", None)],
        },
        RoleSpec {
            name: "centralized-local",
            file: "dema-cluster/src/engines/centralized.rs",
            states: &["streaming"],
            receives: &[],
            sends: &["EventBatch"],
            transitions: &[t("streaming", "@window", "streaming", Some("EventBatch"))],
        },
        RoleSpec {
            name: "dec-sort-root",
            file: "dema-cluster/src/engines/dec_sort.rs",
            states: &["collect"],
            receives: &["EventBatch"],
            sends: &[],
            transitions: &[t("collect", "EventBatch", "collect", None)],
        },
        RoleSpec {
            name: "dec-sort-local",
            file: "dema-cluster/src/engines/dec_sort.rs",
            states: &["streaming"],
            receives: &[],
            sends: &["EventBatch"],
            transitions: &[t("streaming", "@window", "streaming", Some("EventBatch"))],
        },
        RoleSpec {
            name: "tdigest-root",
            file: "dema-cluster/src/engines/tdigest_central.rs",
            states: &["collect"],
            receives: &["EventBatch"],
            sends: &[],
            transitions: &[t("collect", "EventBatch", "collect", None)],
        },
        RoleSpec {
            name: "tdigest-local",
            file: "dema-cluster/src/engines/tdigest_central.rs",
            states: &["streaming"],
            receives: &[],
            sends: &["EventBatch"],
            transitions: &[t("streaming", "@window", "streaming", Some("EventBatch"))],
        },
        RoleSpec {
            name: "tdigest-dist-root",
            file: "dema-cluster/src/engines/tdigest_distributed.rs",
            states: &["collect"],
            receives: &["DigestBatch"],
            sends: &[],
            transitions: &[t("collect", "DigestBatch", "collect", None)],
        },
        RoleSpec {
            name: "tdigest-dist-local",
            file: "dema-cluster/src/engines/tdigest_distributed.rs",
            states: &["streaming"],
            receives: &[],
            sends: &["DigestBatch"],
            transitions: &[t("streaming", "@window", "streaming", Some("DigestBatch"))],
        },
        RoleSpec {
            name: "kll-root",
            file: "dema-cluster/src/engines/kll_distributed.rs",
            states: &["collect"],
            receives: &["SketchBatch"],
            sends: &[],
            transitions: &[t("collect", "SketchBatch", "collect", None)],
        },
        RoleSpec {
            name: "kll-local",
            file: "dema-cluster/src/engines/kll_distributed.rs",
            states: &["streaming"],
            receives: &[],
            sends: &["SketchBatch"],
            transitions: &[t("streaming", "@window", "streaming", Some("SketchBatch"))],
        },
        // ── Shared shells ───────────────────────────────────────────────
        RoleSpec {
            // Tree relays route control envelopes downward; upward bytes
            // are forwarded opaquely and never inspected, so `Routed` is
            // the only variant the router may match.
            name: "relay",
            file: "dema-cluster/src/relay.rs",
            states: &["forwarding"],
            receives: &["Routed"],
            sends: &["Routed"],
            transitions: &[t("forwarding", "Routed", "forwarding", Some("Routed"))],
        },
        RoleSpec {
            // The retry supervisor owns deadlines; an expiry NACKs the
            // stuck stage. It receives nothing itself — engines feed it.
            name: "supervisor",
            file: "dema-cluster/src/engines/retry.rs",
            states: &["armed"],
            receives: &[],
            sends: &["ResendWindow", "CandidateRetry"],
            transitions: &[
                t("armed", "@timeout", "armed", Some("ResendWindow")),
                t("armed", "@timeout", "armed", Some("CandidateRetry")),
            ],
        },
        RoleSpec {
            // The engine-agnostic root shell intercepts stream ends and
            // the membership protocol; every other data-plane message goes
            // to the engine. Joins/leaves are staged on arrival and take
            // effect at the declared window boundary: `@epoch` fires when
            // the last window of the old epoch resolves (broadcasting the
            // switch), `@drained` when every window a leaver owed is
            // resolved (releasing its responder).
            name: "root-shell",
            file: "dema-cluster/src/root.rs",
            states: &["running"],
            receives: &["StreamEnd", "JoinRequest", "LeaveAnnounce"],
            sends: &["JoinAccept", "EpochSwitch", "DrainComplete"],
            transitions: &[
                t("running", "StreamEnd", "running", None),
                Transition {
                    from: "running",
                    on: "JoinRequest",
                    to: "running",
                    reply: Some("JoinAccept"),
                    obligation: Some(Obligation {
                        replies: &["JoinAccept"],
                        when: Condition::Always,
                    }),
                },
                t("running", "LeaveAnnounce", "running", None),
                t("running", "@epoch", "running", Some("EpochSwitch")),
                t("running", "@drained", "running", Some("DrainComplete")),
            ],
        },
        RoleSpec {
            // The local shell closes windows and ends the stream. A
            // mid-stream joiner announces itself before its first window;
            // a leaver announces after its last window and keeps its
            // responder draining until the root's DrainComplete (which the
            // responder answers with the StreamEnd marker).
            name: "local-shell",
            file: "dema-cluster/src/local.rs",
            states: &["joining", "streaming", "draining", "ended"],
            receives: &[],
            sends: &["StreamEnd", "JoinRequest", "LeaveAnnounce"],
            transitions: &[
                t("joining", "@join", "streaming", Some("JoinRequest")),
                t("streaming", "@end", "ended", Some("StreamEnd")),
                t("streaming", "@leave", "draining", Some("LeaveAnnounce")),
            ],
        },
    ],
};

/// Look up a role by name.
pub fn role(name: &str) -> Option<&'static RoleSpec> {
    SPEC.roles.iter().find(|r| r.name == name)
}

/// `true` if `on` names a pseudo-event rather than a wire message.
pub fn is_pseudo(on: &str) -> bool {
    on.starts_with(PSEUDO_PREFIX)
}

/// The distinct source files the spec maps roles onto.
pub fn spec_files() -> Vec<&'static str> {
    let mut files: Vec<&'static str> = SPEC.roles.iter().map(|r| r.file).collect();
    files.sort_unstable();
    files.dedup();
    files
}

/// Union of `receives` over all roles hosted by `file` — the variants the
/// file **must** mention in non-test code (lint R6's required set).
pub fn required_for_file(file: &str) -> Vec<&'static str> {
    let mut v: Vec<&'static str> = SPEC
        .roles
        .iter()
        .filter(|r| r.file == file)
        .flat_map(|r| r.receives.iter().copied())
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Union of `receives ∪ sends` over all roles hosted by `file` — the only
/// variants the file **may** mention in non-test code (lint R6's allowed
/// set).
pub fn allowed_for_file(file: &str) -> Vec<&'static str> {
    let mut v: Vec<&'static str> = SPEC
        .roles
        .iter()
        .filter(|r| r.file == file)
        .flat_map(|r| r.receives.iter().chain(r.sends.iter()).copied())
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_names_are_unique_and_resolvable() {
        let mut names: Vec<&str> = SPEC.roles.iter().map(|r| r.name).collect();
        names.sort_unstable();
        let deduped = {
            let mut d = names.clone();
            d.dedup();
            d
        };
        assert_eq!(names, deduped, "duplicate role name");
        for r in SPEC.roles {
            assert_eq!(role(r.name).map(|x| x.name), Some(r.name));
        }
        assert!(role("no-such-role").is_none());
    }

    #[test]
    fn transitions_stay_within_declared_states() {
        for r in SPEC.roles {
            for tr in r.transitions {
                assert!(
                    r.states.contains(&tr.from),
                    "{}: transition from undeclared state {}",
                    r.name,
                    tr.from
                );
                assert!(
                    r.states.contains(&tr.to),
                    "{}: transition to undeclared state {}",
                    r.name,
                    tr.to
                );
            }
        }
    }

    #[test]
    fn receives_equal_non_pseudo_triggers() {
        for r in SPEC.roles {
            let mut triggers: Vec<&str> = r
                .transitions
                .iter()
                .map(|t| t.on)
                .filter(|on| !is_pseudo(on))
                .collect();
            triggers.sort_unstable();
            triggers.dedup();
            let mut receives: Vec<&str> = r.receives.to_vec();
            receives.sort_unstable();
            assert_eq!(
                triggers, receives,
                "{}: receives must equal the set of wire triggers",
                r.name
            );
        }
    }

    #[test]
    fn replies_and_obligations_are_declared_sends() {
        for r in SPEC.roles {
            for tr in r.transitions {
                if let Some(reply) = tr.reply {
                    assert!(
                        r.sends.contains(&reply),
                        "{}: reply {} not in sends",
                        r.name,
                        reply
                    );
                }
                if let Some(ob) = tr.obligation {
                    assert!(!ob.replies.is_empty());
                    for reply in ob.replies {
                        assert!(
                            r.sends.contains(reply),
                            "{}: obligation reply {} not in sends",
                            r.name,
                            reply
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn file_unions_cover_roles() {
        // dema.rs hosts three roles; its allowed set is their union.
        let allowed = allowed_for_file("dema-cluster/src/engines/dema.rs");
        for v in [
            "SynopsisBatch",
            "CandidateReply",
            "CandidateRequest",
            "CandidateRetry",
            "ResendWindow",
            "GammaUpdate",
            "StreamEnd",
        ] {
            assert!(allowed.contains(&v), "dema.rs union missing {v}");
        }
        let required = required_for_file("dema-cluster/src/engines/dema.rs");
        for v in [
            "SynopsisBatch",
            "CandidateReply",
            "CandidateRequest",
            "CandidateRetry",
            "ResendWindow",
            "GammaUpdate",
        ] {
            assert!(required.contains(&v), "dema.rs required missing {v}");
        }
        assert!(!required.contains(&"StreamEnd"), "StreamEnd is send-only");
        assert_eq!(
            required_for_file("dema-cluster/src/engines/centralized.rs"),
            vec!["EventBatch"]
        );
        assert!(required_for_file("no/such/file.rs").is_empty());
    }
}
