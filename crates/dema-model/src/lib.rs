#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # dema-model
//!
//! Protocol conformance tooling for the Dema cluster: a **declarative
//! specification** of the wire protocol (one state machine per role, over
//! `dema-wire` message tags) plus a **bounded interleaving explorer** that
//! runs the real engines under a deterministic scheduler and checks every
//! explored delivery order against the spec.
//!
//! * [`spec`] — the specification tables: roles, states, legal
//!   transitions, reply obligations. Pure data (zero dependencies), so
//!   `dema-lint` consumes it for the static conformance rules R6/R7 and
//!   this crate interprets it dynamically.
//! * [`explore`] *(feature `explore`, on by default)* — stateless model
//!   checking over the mem transport: enumerate message-delivery orders
//!   up to a schedule budget, with state-fingerprint pruning keyed on
//!   per-link FIFO independence (a DPOR-lite reduction), fault injection
//!   as schedule choices, and per-path assertions: invariant audits, no
//!   deadlock, spec-transition legality, reply obligations, and
//!   exact-engine results identical to the canonical schedule.
//!
//! The split mirrors the paper's correctness argument: §4's rank bounds
//! assume synopses and candidates actually arrive and are handled — this
//! crate checks the "actually arrive and are handled" half.

pub mod spec;

#[cfg(feature = "explore")]
pub mod explore;

pub use spec::{role, Condition, Obligation, ProtocolSpec, RoleSpec, Transition, SPEC};
