//! Explorer end-to-end checks: schedule enumeration on a real 1-root /
//! 2-local Dema topology, the DPOR-lite reduction, fault schedules under
//! resilience, and the deliberately-broken responder being caught.
//!
//! `MODEL_BUDGET` (env) overrides the smoke schedule budget; check.sh
//! runs the default, CI or a curious reader can raise it.

use dema_cluster::config::{EngineKind, MembershipChange, MembershipPlan, Resilience};
use dema_model::explore::{explore, ExploreConfig, Mutation};

fn budget() -> usize {
    std::env::var("MODEL_BUDGET")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1200)
}

/// Acceptance: ≥ 1000 distinct fully-checked schedules on a 1-root /
/// 2-local Dema topology, zero violations of any kind. Dedup is off, so
/// every counted schedule is a genuinely distinct delivery order that ran
/// end to end.
#[test]
fn smoke_enumerates_thousand_clean_schedules() {
    let budget = budget();
    let cfg = ExploreConfig::smoke(2, 2, 3, budget).unwrap();
    let report = explore(&cfg).unwrap();
    assert!(
        report.schedules >= budget.min(1000),
        "expected ≥ {} schedules, explored {} (exhausted: {})",
        budget.min(1000),
        report.schedules,
        report.exhausted
    );
    assert!(report.clean(), "violations: {:?}", report.violations);
    assert_eq!(report.pruned, 0, "dedup off must not prune");
    assert_eq!(report.stuck_faulty, 0, "no drops were allowed");
    assert!(report.deepest > 0);
}

/// The fingerprint reduction prunes interleavings that only commute
/// independent per-link deliveries, without changing the verdict.
#[test]
fn dedup_prunes_equivalent_interleavings() {
    let mut cfg = ExploreConfig::smoke(2, 1, 3, 400).unwrap();
    cfg.dedup = true;
    let report = explore(&cfg).unwrap();
    assert!(
        report.pruned > 0,
        "two independent uplinks must yield commuting deliveries to prune"
    );
    assert!(report.distinct_states > 0);
    assert!(report.clean(), "violations: {:?}", report.violations);
}

/// Engines without a control plane explore cleanly through the same
/// harness (the registry's roles pick their spec machines).
#[test]
fn centralized_engine_explores_clean() {
    let mut cfg = ExploreConfig::smoke(2, 2, 3, 200).unwrap();
    cfg.engine = EngineKind::Centralized;
    let report = explore(&cfg).unwrap();
    assert!(report.schedules > 0);
    assert!(report.clean(), "violations: {:?}", report.violations);
}

fn tiny_resilience() -> Resilience {
    Resilience {
        request_timeout_ms: 5,
        max_retries: 2,
        liveness_k: 2,
        seed: 7,
    }
}

/// Faulty schedules under resilience: every drop choice must still end
/// with the root finished (replays or death verdicts), with no spec or
/// obligation violations.
#[test]
fn resilient_fault_schedules_terminate_clean() {
    let mut cfg = ExploreConfig::smoke(1, 1, 3, 25).unwrap();
    cfg.drop_budget = 1;
    cfg.resilience = Some(tiny_resilience());
    let report = explore(&cfg).unwrap();
    assert!(report.schedules > 0);
    assert!(report.clean(), "violations: {:?}", report.violations);
    assert_eq!(
        report.stuck_faulty, 0,
        "resilient faulty paths must finish, not wedge"
    );
}

/// Fault-free membership churn: node 2 joins at the window-1 boundary, so
/// its `JoinRequest` and first synopses race the founding members'
/// window-0 fetch on every explored interleaving. Every path must satisfy
/// the root-shell's JoinAccept obligation, finish, and reproduce the
/// canonical run's outcomes bit-for-bit.
#[test]
fn join_interleavings_are_clean_and_deterministic() {
    let mut cfg = ExploreConfig::smoke(3, 2, 3, 800).unwrap();
    cfg.dedup = true;
    cfg.membership = MembershipPlan {
        changes: vec![MembershipChange {
            window: 1,
            joins: vec![2],
            leaves: vec![],
        }],
    };
    let report = explore(&cfg).unwrap();
    assert!(report.schedules > 0);
    assert!(report.clean(), "violations: {:?}", report.violations);
    assert_eq!(report.stuck_faulty, 0, "no drops were allowed");
}

/// Acceptance (tentpole): join-during-retry. With a drop budget and the
/// supervisor armed, schedules exist where the joiner's announcement and
/// first synopses land while the root is NACKing a dropped window-0
/// contribution. Zero invariant, deadlock, or obligation violations, and
/// every faulty path still terminates finished.
#[test]
fn join_during_retry_interleavings_are_clean() {
    let mut cfg = ExploreConfig::smoke(2, 2, 3, 400).unwrap();
    cfg.drop_budget = 1;
    cfg.resilience = Some(tiny_resilience());
    cfg.dedup = true;
    cfg.membership = MembershipPlan {
        changes: vec![MembershipChange {
            window: 1,
            joins: vec![1],
            leaves: vec![],
        }],
    };
    let report = explore(&cfg).unwrap();
    assert!(report.schedules > 0);
    assert!(report.clean(), "violations: {:?}", report.violations);
    assert_eq!(
        report.stuck_faulty, 0,
        "resilient faulty paths must finish, not wedge"
    );
}

/// Acceptance (tentpole): leave-during-candidate-fetch. Node 1 drains at
/// the window-1 boundary, so its `LeaveAnnounce` is on the uplink while
/// the root's window-0 `CandidateRequest` is still in flight — the DFS
/// interleaves the drain handshake (announce → epoch switch →
/// DrainComplete → StreamEnd sign-off) against the fetch in every order.
/// All paths must finish with the leaver drained and match the canonical
/// outcomes.
#[test]
fn leave_during_candidate_fetch_interleavings_are_clean() {
    let mut cfg = ExploreConfig::smoke(2, 2, 3, 800).unwrap();
    cfg.dedup = true;
    cfg.membership = MembershipPlan {
        changes: vec![MembershipChange {
            window: 1,
            joins: vec![],
            leaves: vec![1],
        }],
    };
    let report = explore(&cfg).unwrap();
    assert!(report.schedules > 0);
    assert!(report.clean(), "violations: {:?}", report.violations);
    assert_eq!(report.stuck_faulty, 0, "no drops were allowed");
}

/// Acceptance: a responder that skips its `ResendWindow` reply obligation
/// is caught. The mutation leaves every other transition intact, so the
/// only way to flag it is the spec's obligation check firing on the
/// schedule branch that drops the synopsis and delivers the NACK.
#[test]
fn skipped_resend_reply_is_caught_by_obligation_check() {
    let mut cfg = ExploreConfig::smoke(1, 1, 3, 25).unwrap();
    cfg.drop_budget = 1;
    cfg.resilience = Some(tiny_resilience());
    cfg.mutation = Mutation::SkipResendReply;
    let report = explore(&cfg).unwrap();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.contains("obligation violated") && v.contains("ResendWindow")),
        "the skipped ResendWindow reply must surface as an obligation \
         violation; got: {:?}",
        report.violations
    );
}
