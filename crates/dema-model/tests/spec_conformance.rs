//! The spec tables must stay consistent with the wire format and the
//! engine registry, and the responder must honor the reply transitions
//! the spec declares — driven here against the real `responder_step`.

use dema_cluster::config::{EngineKind, GammaMode};
use dema_cluster::engines::REGISTRY;
use dema_cluster::local::{responder_step, LocalShared, LocalStepper};
use dema_core::event::{Event, NodeId, WindowId};
use dema_core::selector::SelectionStrategy;
use dema_metrics::NetworkCounters;
use dema_model::spec;
use dema_net::step::{step_link, StepQueue, StepSender};
use dema_wire::{tag_by_name, Message};

#[test]
fn every_spec_message_name_resolves_in_wire_tags() {
    for role in spec::SPEC.roles {
        for name in role.receives.iter().chain(role.sends.iter()) {
            assert!(
                tag_by_name(name).is_some(),
                "role {} lists {name}, which is not a dema-wire tag",
                role.name
            );
        }
        for tr in role.transitions {
            assert!(
                spec::is_pseudo(tr.on) || tag_by_name(tr.on).is_some(),
                "role {}: transition trigger {} is neither a pseudo-event nor a tag",
                role.name,
                tr.on
            );
            if let Some(reply) = tr.reply {
                assert!(
                    tag_by_name(reply).is_some(),
                    "role {}: reply {reply} is not a dema-wire tag",
                    role.name
                );
            }
            if let Some(ob) = &tr.obligation {
                for reply in ob.replies {
                    assert!(
                        tag_by_name(reply).is_some(),
                        "role {}: obligation reply {reply} is not a dema-wire tag",
                        role.name
                    );
                }
            }
            assert!(
                role.states.contains(&tr.from) && role.states.contains(&tr.to),
                "role {}: transition {} -> {} uses undeclared states",
                role.name,
                tr.from,
                tr.to
            );
        }
    }
}

#[test]
fn every_registry_role_resolves_in_spec() {
    for desc in &REGISTRY {
        for name in desc.roles {
            assert!(
                spec::role(name).is_some(),
                "engine {} declares role {name}, which the protocol spec does not define",
                desc.label
            );
        }
    }
}

/// A resilient local that has processed one window, plus its uplink.
fn one_window_local() -> (std::sync::Arc<LocalShared>, StepSender, StepQueue, Message) {
    let shared = LocalShared::resilient(2);
    let (mut tx, q) = step_link(NetworkCounters::new_shared());
    let events = vec![vec![
        Event::new(5, 0, 1),
        Event::new(1, 1, 2),
        Event::new(9, 2, 3),
        Event::new(3, 3, 4),
    ]];
    let engine = EngineKind::Dema {
        gamma: GammaMode::Fixed(2),
        strategy: SelectionStrategy::WindowCut,
    };
    let stepper_shared = std::sync::Arc::clone(&shared);
    let mut stepper = LocalStepper::new(NodeId(0), events, engine, &stepper_shared);
    stepper.step(&mut tx).unwrap();
    drop(stepper);
    let synopsis = q.pop().unwrap();
    assert_eq!(synopsis.variant_name(), "SynopsisBatch");
    (shared, tx, q, synopsis)
}

/// Spec transition (`CandidateRetry` → `CandidateReply`): a retry NACK
/// against a stored window must be answered from the slice store.
#[test]
fn responder_answers_candidate_retry_with_candidate_reply() {
    let (shared, mut tx, q, _synopsis) = one_window_local();
    let retry = Message::CandidateRetry {
        window: WindowId(0),
        slices: vec![0],
        attempt: 1,
    };
    responder_step(NodeId(0), retry, &mut tx, &shared).unwrap();
    let reply = q.pop().expect("retry must be answered");
    assert!(
        matches!(
            reply,
            Message::CandidateReply { window, .. } if window == WindowId(0)
        ),
        "expected CandidateReply for window 0, got {reply:?}"
    );
}

/// Spec transition (`ResendWindow` → `SynopsisBatch`): a resend NACK for
/// a cached window must replay the exact uplink message.
#[test]
fn responder_replays_synopsis_batch_on_resend_window() {
    let (shared, mut tx, q, synopsis) = one_window_local();
    let nack = Message::ResendWindow {
        window: WindowId(0),
        attempt: 1,
    };
    responder_step(NodeId(0), nack, &mut tx, &shared).unwrap();
    let replay = q
        .pop()
        .expect("resend must be answered from the sent cache");
    assert!(matches!(replay, Message::SynopsisBatch { .. }));
    assert_eq!(
        replay.to_bytes(),
        synopsis.to_bytes(),
        "replay must be byte-identical to the original synopsis"
    );
}
