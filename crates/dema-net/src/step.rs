//! Step-driven in-memory links for deterministic schedulers.
//!
//! The model-checking explorer in `dema-model` needs to *choose* when each
//! in-flight message is delivered, so the channel-backed [`crate::mem`]
//! links (whose receivers block and whose delivery order is fixed FIFO per
//! link at `recv` time) don't fit. A step link instead exposes its queue:
//! the sending side is an ordinary [`MsgSender`] with exactly the same
//! wire accounting as [`crate::mem::link`], while the receiving side is a
//! [`StepQueue`] handle the scheduler pops explicitly — one pop per
//! schedule action. Per-link FIFO order is preserved (messages within one
//! link never reorder, matching real stream transports); the scheduler's
//! freedom is in interleaving *across* links, and in dropping a queued
//! message to model a fault.

use std::collections::VecDeque;
use std::sync::Arc;

use dema_core::sync::{rank, Mutex};
use dema_wire::Message;

use crate::{MsgSender, NetError, SharedCounters};

/// Sending half of a step link. Accounting is identical to
/// [`crate::mem::MemSender`]: `encoded_len() + 4` bytes per message.
pub struct StepSender {
    queue: Arc<Mutex<VecDeque<Message>>>,
    counters: SharedCounters,
}

/// The scheduler-visible queue of a step link: in-flight messages in FIFO
/// order, popped (delivered) or discarded (dropped) one at a time.
#[derive(Clone)]
pub struct StepQueue {
    queue: Arc<Mutex<VecDeque<Message>>>,
}

/// Create a unidirectional step link whose traffic is recorded in
/// `counters`.
pub fn step_link(counters: SharedCounters) -> (StepSender, StepQueue) {
    let queue = Arc::new(Mutex::new(rank::NET_STEP_QUEUE, VecDeque::new()));
    (
        StepSender {
            queue: Arc::clone(&queue),
            counters,
        },
        StepQueue { queue },
    )
}

impl MsgSender for StepSender {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        let bytes = msg.encoded_len() as u64 + 4;
        self.counters.record(bytes, msg.event_units());
        self.queue.lock().push_back(msg.clone());
        Ok(())
    }
}

impl StepSender {
    /// Cheap clone for fan-in wiring; all clones feed the same queue and
    /// the same counters.
    pub fn clone_sender(&self) -> StepSender {
        StepSender {
            queue: Arc::clone(&self.queue),
            counters: SharedCounters::clone(&self.counters),
        }
    }
}

impl StepQueue {
    /// Deliver (remove and return) the oldest in-flight message.
    pub fn pop(&self) -> Option<Message> {
        self.queue.lock().pop_front()
    }

    /// Number of in-flight messages.
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// `true` when nothing is in flight on this link.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }

    /// Clone of the oldest in-flight message without delivering it.
    pub fn peek(&self) -> Option<Message> {
        self.queue.lock().front().cloned()
    }

    /// Clone of the `idx`-th in-flight message (0 = oldest) without
    /// delivering it. Lets a scheduler fingerprint the full pending
    /// contents of a link.
    pub fn nth(&self, idx: usize) -> Option<Message> {
        self.queue.lock().get(idx).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dema_metrics::NetworkCounters;

    #[test]
    fn step_link_is_fifo_and_scheduler_driven() {
        let (mut tx, q) = step_link(NetworkCounters::new_shared());
        for gamma in 1..=3 {
            tx.send(&Message::GammaUpdate { gamma }).unwrap();
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek(), Some(Message::GammaUpdate { gamma: 1 }));
        assert_eq!(q.pop(), Some(Message::GammaUpdate { gamma: 1 }));
        assert_eq!(q.pop(), Some(Message::GammaUpdate { gamma: 2 }));
        assert_eq!(q.pop(), Some(Message::GammaUpdate { gamma: 3 }));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn accounting_matches_mem_link() {
        let counters = NetworkCounters::new_shared();
        let (mut tx, _q) = step_link(SharedCounters::clone(&counters));
        let m = Message::GammaUpdate { gamma: 4 };
        tx.send(&m).unwrap();
        let s = counters.snapshot();
        assert_eq!(s.bytes, m.encoded_len() as u64 + 4);
        assert_eq!(s.messages, 1);
    }

    #[test]
    fn cloned_senders_share_queue() {
        let (tx, q) = step_link(NetworkCounters::new_shared());
        let mut tx2 = tx.clone_sender();
        tx2.send(&Message::GammaUpdate { gamma: 9 }).unwrap();
        assert_eq!(q.pop(), Some(Message::GammaUpdate { gamma: 9 }));
    }
}
