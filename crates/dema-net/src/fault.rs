//! Deterministic fault injection for chaos testing.
//!
//! [`FaultySender`] wraps any [`MsgSender`] and perturbs the message flow
//! according to a seeded [`FaultPlan`]: per-message drop probability, fixed
//! plus jittered delay, duplication, a bounded reordering window, and a
//! scripted disconnect after the N-th send. Every decision is drawn from a
//! [`FaultRng`] seeded from the plan, so an entire chaos scenario is
//! reproducible from one `u64` — no wall-clock randomness anywhere.
//!
//! The wrapper composes with [`crate::mem::Throttle`]: wrap a throttled
//! link's sender and faults apply *before* pacing (a dropped frame never
//! occupies the link, a duplicated frame pays for both copies).
//!
//! Accounting: frames the inner sender delivers are recorded by the inner
//! sender as usual. Frames the fault layer *drops* are still recorded in
//! the wrapper's counters — the sender did put them on the wire; the wire
//! ate them — so retry traffic stays visible in byte counts.

use std::collections::VecDeque;
use std::time::Duration;

use dema_wire::Message;

use crate::{MsgSender, NetError, SharedCounters};

/// A small, fast, deterministic PRNG (SplitMix64). Not cryptographic; used
/// only to make fault schedules and backoff jitter reproducible from a seed.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Seed the generator. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> FaultRng {
        FaultRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits → the standard mantissa construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`; returns 0 when `bound` is 0.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A seeded schedule of link misbehaviour. All fields default to "no
/// fault"; a default plan is a transparent pass-through.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision this plan makes.
    pub seed: u64,
    /// Probability in `[0, 1]` that a message is silently eaten.
    pub drop_prob: f64,
    /// Fixed extra latency added to every delivered message.
    pub delay: Duration,
    /// Additional uniformly-jittered latency in `[0, delay_jitter)`.
    pub delay_jitter: Duration,
    /// Probability that a delivered message is sent twice.
    pub dup_prob: f64,
    /// Probability that a message is held back and delivered after a later
    /// one (only when `reorder_window > 0`).
    pub reorder_prob: f64,
    /// Maximum number of messages held back at once.
    pub reorder_window: usize,
    /// After this many `send` calls, the link behaves as hard-disconnected.
    pub disconnect_after: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::new(0)
    }
}

impl FaultPlan {
    /// A fault-free plan with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_prob: 0.0,
            delay: Duration::ZERO,
            delay_jitter: Duration::ZERO,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            reorder_window: 0,
            disconnect_after: None,
        }
    }

    /// Drop each message with probability `p`.
    pub fn with_drop(mut self, p: f64) -> FaultPlan {
        self.drop_prob = p;
        self
    }

    /// Delay every delivery by `fixed` plus a uniform draw below `jitter`.
    pub fn with_delay(mut self, fixed: Duration, jitter: Duration) -> FaultPlan {
        self.delay = fixed;
        self.delay_jitter = jitter;
        self
    }

    /// Duplicate each delivered message with probability `p`.
    pub fn with_dup(mut self, p: f64) -> FaultPlan {
        self.dup_prob = p;
        self
    }

    /// Hold back each message with probability `p`, releasing it after a
    /// later message; at most `window` messages are held at a time.
    pub fn with_reorder(mut self, p: f64, window: usize) -> FaultPlan {
        self.reorder_prob = p;
        self.reorder_window = window;
        self
    }

    /// Sever the link permanently after `n` successful `send` calls —
    /// models a node crash at a scripted point in the run.
    pub fn with_disconnect_after(mut self, n: u64) -> FaultPlan {
        self.disconnect_after = Some(n);
        self
    }

    /// True when the plan never perturbs anything (used to skip wrapping).
    pub fn is_transparent(&self) -> bool {
        self.drop_prob == 0.0
            && self.delay == Duration::ZERO
            && self.delay_jitter == Duration::ZERO
            && self.dup_prob == 0.0
            && (self.reorder_prob == 0.0 || self.reorder_window == 0)
            && self.disconnect_after.is_none()
    }

    /// Wrap `inner` in a [`FaultySender`] executing this plan. Dropped
    /// frames are accounted in `counters`.
    pub fn wrap(self, inner: Box<dyn MsgSender>, counters: SharedCounters) -> FaultySender {
        FaultySender::new(inner, self, counters)
    }
}

/// A [`MsgSender`] that executes a [`FaultPlan`] against an inner sender.
pub struct FaultySender {
    inner: Box<dyn MsgSender>,
    plan: FaultPlan,
    rng: FaultRng,
    counters: SharedCounters,
    sent: u64,
    held: VecDeque<Message>,
    severed: bool,
}

impl FaultySender {
    /// Wrap `inner`, drawing all fault decisions from `plan.seed`.
    pub fn new(
        inner: Box<dyn MsgSender>,
        plan: FaultPlan,
        counters: SharedCounters,
    ) -> FaultySender {
        let rng = FaultRng::new(plan.seed);
        FaultySender {
            inner,
            plan,
            rng,
            counters,
            sent: 0,
            held: VecDeque::new(),
            severed: false,
        }
    }

    fn flush_held(&mut self) -> Result<(), NetError> {
        while let Some(m) = self.held.pop_front() {
            self.inner.send(&m)?;
        }
        Ok(())
    }
}

impl MsgSender for FaultySender {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        if self.severed {
            return Err(NetError::Disconnected);
        }
        if let Some(n) = self.plan.disconnect_after {
            if self.sent >= n {
                // Crash point: anything still held back dies with the link.
                self.severed = true;
                self.held.clear();
                return Err(NetError::Disconnected);
            }
        }
        self.sent += 1;

        if self.plan.drop_prob > 0.0 && self.rng.next_f64() < self.plan.drop_prob {
            // The frame left this endpoint and died on the wire: account it
            // so retry traffic remains visible in byte counters.
            self.counters
                .record(msg.encoded_len() as u64 + 4, msg.event_units());
            return Ok(());
        }

        let mut delay = self.plan.delay;
        if self.plan.delay_jitter > Duration::ZERO {
            let jitter_ns = u64::try_from(self.plan.delay_jitter.as_nanos()).unwrap_or(u64::MAX);
            delay += Duration::from_nanos(self.rng.next_below(jitter_ns));
        }
        if delay > Duration::ZERO {
            std::thread::sleep(delay);
        }

        if self.plan.reorder_window > 0
            && self.held.len() < self.plan.reorder_window
            && self.rng.next_f64() < self.plan.reorder_prob
        {
            self.held.push_back(msg.clone());
            return Ok(());
        }

        self.inner.send(msg)?;
        self.flush_held()?;
        if self.plan.dup_prob > 0.0 && self.rng.next_f64() < self.plan.dup_prob {
            self.inner.send(msg)?;
        }
        Ok(())
    }

    fn flush_pending(&mut self) -> Result<bool, NetError> {
        if self.severed {
            // A severed link has nothing retryable on the wire.
            return Ok(true);
        }
        self.inner.flush_pending()
    }
}

impl Drop for FaultySender {
    fn drop(&mut self) {
        // Best effort: messages still held for reordering are released so a
        // clean shutdown does not manufacture extra loss.
        if !self.severed {
            let _ = self.flush_held();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{link, throttled_link, Throttle};
    use crate::MsgReceiver;
    use dema_metrics::NetworkCounters;

    fn gammas(n: u64) -> Vec<Message> {
        (0..n).map(|i| Message::GammaUpdate { gamma: i }).collect()
    }

    fn drain(rx: &mut dyn MsgReceiver) -> Vec<Message> {
        let mut got = Vec::new();
        while let Ok(Some(m)) = rx.try_recv() {
            got.push(m);
        }
        got
    }

    fn run_plan(plan: FaultPlan, msgs: &[Message]) -> Vec<Message> {
        let (tx, mut rx) = link(NetworkCounters::new_shared());
        let mut faulty = plan.wrap(Box::new(tx), NetworkCounters::new_shared());
        for m in msgs {
            let _ = faulty.send(m);
        }
        drop(faulty);
        drain(&mut rx)
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = FaultRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = FaultRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = FaultRng::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut r = FaultRng::new(7);
        for _ in 0..100 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(r.next_below(10) < 10);
        }
        assert_eq!(FaultRng::new(1).next_below(0), 0);
    }

    #[test]
    fn default_plan_is_transparent() {
        assert!(FaultPlan::default().is_transparent());
        assert!(!FaultPlan::new(1).with_drop(0.5).is_transparent());
        assert!(!FaultPlan::new(1).with_disconnect_after(10).is_transparent());
        let msgs = gammas(20);
        assert_eq!(run_plan(FaultPlan::new(3), &msgs), msgs);
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let plan = || FaultPlan::new(99).with_drop(0.3).with_dup(0.3);
        let msgs = gammas(200);
        let one = run_plan(plan(), &msgs);
        let two = run_plan(plan(), &msgs);
        assert_eq!(one, two);
        assert_ne!(one, msgs, "with p=0.3 over 200 sends some fault fires");
        let other = run_plan(FaultPlan::new(100).with_drop(0.3).with_dup(0.3), &msgs);
        assert_ne!(one, other, "different seed, different schedule");
    }

    #[test]
    fn dropped_messages_are_still_accounted() {
        let counters = NetworkCounters::new_shared();
        let wrapper_counters = NetworkCounters::new_shared();
        let (tx, mut rx) = link(SharedCounters::clone(&counters));
        let mut faulty = FaultPlan::new(1)
            .with_drop(1.0)
            .wrap(Box::new(tx), SharedCounters::clone(&wrapper_counters));
        let m = Message::GammaUpdate { gamma: 5 };
        for _ in 0..3 {
            faulty.send(&m).unwrap();
        }
        assert!(drain(&mut rx).is_empty(), "everything dropped");
        assert_eq!(counters.snapshot().messages, 0, "inner saw nothing");
        let s = wrapper_counters.snapshot();
        assert_eq!(s.messages, 3);
        assert_eq!(s.bytes, 3 * (m.encoded_len() as u64 + 4));
    }

    #[test]
    fn duplication_delivers_twice() {
        let got = run_plan(FaultPlan::new(5).with_dup(1.0), &gammas(4));
        let expect: Vec<Message> = gammas(4).into_iter().flat_map(|m| [m.clone(), m]).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn reorder_swaps_within_window() {
        let got = run_plan(FaultPlan::new(8).with_reorder(1.0, 1), &gammas(4));
        // With p=1 and window 1: msg0 held; msg1 delivered then msg0
        // released; msg2 held; msg3 delivered then msg2 released.
        let g = |i| Message::GammaUpdate { gamma: i };
        assert_eq!(got, vec![g(1), g(0), g(3), g(2)]);
    }

    #[test]
    fn held_messages_flush_on_clean_drop() {
        let (tx, mut rx) = link(NetworkCounters::new_shared());
        let mut faulty = FaultPlan::new(8)
            .with_reorder(1.0, 4)
            .wrap(Box::new(tx), NetworkCounters::new_shared());
        faulty.send(&Message::GammaUpdate { gamma: 1 }).unwrap();
        drop(faulty);
        assert_eq!(drain(&mut rx), vec![Message::GammaUpdate { gamma: 1 }]);
    }

    #[test]
    fn disconnect_after_n_severs_the_link() {
        let (tx, mut rx) = link(NetworkCounters::new_shared());
        let mut faulty = FaultPlan::new(2)
            .with_disconnect_after(3)
            .wrap(Box::new(tx), NetworkCounters::new_shared());
        let m = Message::GammaUpdate { gamma: 0 };
        for _ in 0..3 {
            faulty.send(&m).unwrap();
        }
        assert!(matches!(faulty.send(&m), Err(NetError::Disconnected)));
        assert!(matches!(faulty.send(&m), Err(NetError::Disconnected)));
        assert_eq!(drain(&mut rx).len(), 3);
    }

    #[test]
    fn delay_slows_delivery() {
        let (tx, mut rx) = link(NetworkCounters::new_shared());
        let mut faulty = FaultPlan::new(4)
            .with_delay(Duration::from_millis(20), Duration::from_millis(10))
            .wrap(Box::new(tx), NetworkCounters::new_shared());
        let start = std::time::Instant::now();
        for m in gammas(3) {
            faulty.send(&m).unwrap();
        }
        assert!(start.elapsed() >= Duration::from_millis(60));
        assert_eq!(drain(&mut rx).len(), 3);
    }

    #[test]
    fn composes_with_throttle() {
        // Fault layer over a throttled link: drops skip the throttle (the
        // frame never occupies the link), deliveries still pace.
        let throttle = Throttle::new_shared(8); // 1 MB/s
        let counters = NetworkCounters::new_shared();
        let (tx, mut rx) = throttled_link(SharedCounters::clone(&counters), throttle);
        let mut faulty = FaultPlan::new(11)
            .with_drop(0.5)
            .wrap(Box::new(tx), SharedCounters::clone(&counters));
        let m = Message::EventBatch {
            node: dema_core::event::NodeId(0),
            window: dema_core::event::WindowId(0),
            sorted: false,
            events: (0..1000)
                .map(|i| dema_core::event::Event::new(i, i as u64, i as u64))
                .collect(),
        };
        for _ in 0..4 {
            faulty.send(&m).unwrap();
        }
        let delivered = drain(&mut rx).len();
        assert!(delivered < 4, "seed 11 drops at least one of four");
        // Every send — dropped or delivered — landed in the shared counters.
        assert_eq!(counters.snapshot().messages, 4);
    }
}
