//! TCP transport: real sockets, length-prefixed frames, same accounting as
//! the in-memory links.
//!
//! One `TcpStream` carries one unidirectional message flow (the cluster
//! wires two streams per node pair). `TCP_NODELAY` is set — the protocol is
//! request/response-ish per window, so Nagle would serialize the
//! identification/calculation round trips.
//!
//! Each frame is assembled (prefix + payload) in a buffer recycled through
//! `dema-wire`'s [`dema_wire::BufferPool`] and reaches the stream as one
//! contiguous write: small frames coalesce in the `BufWriter` and flush as
//! a single syscall; frames larger than its buffer bypass it and are still
//! one `write` each, never one per frame segment.

use std::io::{BufReader, BufWriter, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use dema_wire::frame::{encode_frame_into, read_frame, write_frame, FrameError, MAX_FRAME};
use dema_wire::Message;

use crate::{MsgReceiver, MsgSender, NetError, SharedCounters};

/// `true` for the I/O error kinds that mean "the peer is gone" rather than
/// a transient or environmental failure.
fn is_disconnect(kind: ErrorKind) -> bool {
    matches!(
        kind,
        ErrorKind::BrokenPipe
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::UnexpectedEof
    )
}

/// Sending half over TCP.
pub struct TcpSender {
    writer: BufWriter<TcpStream>,
    counters: SharedCounters,
}

/// Receiving half over TCP.
pub struct TcpReceiver {
    reader: BufReader<TcpStream>,
    /// Last read-timeout successfully applied to the socket, or `None` when
    /// the state is unknown (initially, and after a failed
    /// `set_read_timeout` round-trip — an error mid-change must not leave
    /// us believing the old mode is still in force).
    applied_timeout: Option<Option<Duration>>,
}

impl TcpSender {
    /// Connect to a listening peer.
    pub fn connect(addr: SocketAddr, counters: SharedCounters) -> Result<TcpSender, NetError> {
        let stream = TcpStream::connect(addr).map_err(NetError::Io)?;
        stream.set_nodelay(true).map_err(NetError::Io)?;
        Ok(TcpSender {
            writer: BufWriter::new(stream),
            counters,
        })
    }

    /// Connect to a listening peer, failing after `timeout` instead of
    /// hanging on an unresponsive address. The resulting I/O error (timed
    /// out, refused, unreachable…) is surfaced as [`NetError::Io`].
    pub fn connect_timeout(
        addr: SocketAddr,
        counters: SharedCounters,
        timeout: Duration,
    ) -> Result<TcpSender, NetError> {
        let stream = TcpStream::connect_timeout(&addr, timeout).map_err(NetError::Io)?;
        stream.set_nodelay(true).map_err(NetError::Io)?;
        Ok(TcpSender {
            writer: BufWriter::new(stream),
            counters,
        })
    }

    /// Convert into the reactor-friendly nonblocking sender. Flushes any
    /// bytes still sitting in the blocking `BufWriter` first, so no frame
    /// segment is lost in the handoff.
    pub fn into_nonblocking(mut self) -> Result<NbTcpSender, NetError> {
        self.writer.flush().map_err(NetError::Io)?;
        let stream = self
            .writer
            .into_inner()
            .map_err(|e| NetError::Io(e.into_error()))?;
        stream.set_nonblocking(true).map_err(NetError::Io)?;
        Ok(NbTcpSender {
            stream,
            pending: Vec::new(),
            flushed: 0,
            counters: self.counters,
        })
    }
}

/// Nonblocking TCP sender for reactor hosting. A `send` frames the message
/// into a per-connection outbound buffer and writes as much as the socket
/// accepts; on `WouldBlock` the remainder stays buffered and
/// [`MsgSender::flush_pending`] retries it when the reactor reports the
/// socket writable again. Byte accounting happens at frame time (like the
/// blocking sender's at write time), so counters are independent of how
/// the kernel slices the writes.
pub struct NbTcpSender {
    stream: TcpStream,
    /// Framed-but-unwritten bytes; `flushed` marks how far the socket got.
    pending: Vec<u8>,
    flushed: usize,
    counters: SharedCounters,
}

impl NbTcpSender {
    /// Bytes buffered and not yet accepted by the socket.
    pub fn pending_bytes(&self) -> usize {
        self.pending.len() - self.flushed
    }
}

impl MsgSender for NbTcpSender {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        let before = self.pending.len();
        encode_frame_into(msg, &mut self.pending);
        self.counters
            .record((self.pending.len() - before) as u64, msg.event_units());
        self.flush_pending().map(|_| ())
    }

    fn flush_pending(&mut self) -> Result<bool, NetError> {
        while self.flushed < self.pending.len() {
            match self.stream.write(&self.pending[self.flushed..]) {
                Ok(0) => return Err(NetError::Disconnected),
                Ok(n) => self.flushed += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if is_disconnect(e.kind()) => return Err(NetError::Disconnected),
                Err(e) => return Err(NetError::Io(e)),
            }
        }
        self.pending.clear();
        self.flushed = 0;
        Ok(true)
    }
}

impl MsgSender for TcpSender {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        let bytes = write_frame(&mut self.writer, msg).map_err(NetError::Io)?;
        // Flush per message: the protocol's round trips are latency-bound.
        self.writer.flush().map_err(NetError::Io)?;
        self.counters.record(bytes, msg.event_units());
        Ok(())
    }
}

impl TcpReceiver {
    /// Wrap an accepted stream.
    pub fn from_stream(stream: TcpStream) -> Result<TcpReceiver, NetError> {
        stream.set_nodelay(true).map_err(NetError::Io)?;
        Ok(TcpReceiver {
            reader: BufReader::new(stream),
            applied_timeout: None,
        })
    }

    /// Convert into the reactor-friendly nonblocking receiver. Bytes the
    /// blocking `BufReader` already pulled off the socket are carried over
    /// into the parse buffer, so no frame (or frame fragment) is lost in
    /// the handoff.
    pub fn into_nonblocking(self) -> Result<NbTcpReceiver, NetError> {
        let buf = self.reader.buffer().to_vec();
        let stream = self.reader.into_inner();
        stream.set_nonblocking(true).map_err(NetError::Io)?;
        Ok(NbTcpReceiver {
            stream,
            buf,
            start: 0,
            closed: false,
        })
    }

    /// Put the socket in the wanted blocking mode, skipping the syscall
    /// when it is already known to be in force. On failure the cached state
    /// is invalidated *before* returning, so an early-return error path can
    /// never leave a stale belief about the socket's mode — the next call
    /// re-applies it unconditionally.
    fn apply_timeout(&mut self, want: Option<Duration>) -> Result<(), NetError> {
        if self.applied_timeout == Some(want) {
            return Ok(());
        }
        self.applied_timeout = None;
        self.reader
            .get_ref()
            .set_read_timeout(want)
            .map_err(NetError::Io)?;
        self.applied_timeout = Some(want);
        Ok(())
    }
}

impl MsgReceiver for TcpReceiver {
    fn recv(&mut self) -> Result<Message, NetError> {
        self.apply_timeout(None)?;
        match read_frame(&mut self.reader) {
            Ok((msg, _)) => Ok(msg),
            Err(FrameError::Eof) => Err(NetError::Disconnected),
            Err(FrameError::Io(e)) => Err(NetError::Io(e)),
            Err(e) => Err(NetError::Corrupt(e.to_string())),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, NetError> {
        self.apply_timeout(Some(timeout))?;
        match read_frame(&mut self.reader) {
            Ok((msg, _)) => Ok(Some(msg)),
            Err(FrameError::Eof) => Err(NetError::Disconnected),
            Err(FrameError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(FrameError::Io(e)) => Err(NetError::Io(e)),
            Err(e) => Err(NetError::Corrupt(e.to_string())),
        }
    }
}

/// Nonblocking TCP receiver for reactor hosting: an incremental frame
/// parser over a nonblocking socket. Each poll reads whatever the socket
/// has, returning one decoded message at a time; partial frames stay
/// buffered across polls.
pub struct NbTcpReceiver {
    stream: TcpStream,
    /// Raw bytes read but not yet parsed; `start` is the parse offset.
    buf: Vec<u8>,
    start: usize,
    closed: bool,
}

impl NbTcpReceiver {
    /// Parse one frame out of the buffer, if a complete one is there.
    fn take_frame(&mut self) -> Result<Option<Message>, NetError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]);
        if len > MAX_FRAME {
            return Err(NetError::Corrupt(format!(
                "frame of {len} bytes exceeds limit"
            )));
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let msg =
            Message::decode(&avail[4..total]).map_err(|e| NetError::Corrupt(e.to_string()))?;
        self.start += total;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        Ok(Some(msg))
    }

    /// Poll for one message without blocking. `Ok(None)` when no complete
    /// frame is available yet; [`NetError::Disconnected`] once the peer
    /// has closed cleanly between frames (EOF mid-frame is corruption).
    pub fn poll_msg(&mut self) -> Result<Option<Message>, NetError> {
        loop {
            if let Some(msg) = self.take_frame()? {
                return Ok(Some(msg));
            }
            if self.closed {
                return if self.start < self.buf.len() {
                    Err(NetError::Corrupt("stream ended mid-frame".to_string()))
                } else {
                    Err(NetError::Disconnected)
                };
            }
            // Compact before growing so the buffer stays bounded by the
            // largest in-flight frame, not the connection's history.
            if self.start > 0 {
                self.buf.drain(..self.start);
                self.start = 0;
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => self.closed = true,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if is_disconnect(e.kind()) => self.closed = true,
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }
}

impl MsgReceiver for NbTcpReceiver {
    fn recv(&mut self) -> Result<Message, NetError> {
        let mut spins = 0u32;
        loop {
            if let Some(msg) = self.poll_msg()? {
                return Ok(msg);
            }
            spins += 1;
            if spins > 64 {
                std::thread::sleep(Duration::from_micros(500));
            } else {
                std::thread::yield_now();
            }
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, NetError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut spins = 0u32;
        loop {
            if let Some(msg) = self.poll_msg()? {
                return Ok(Some(msg));
            }
            if std::time::Instant::now() >= deadline {
                return Ok(None);
            }
            spins += 1;
            if spins > 64 {
                std::thread::sleep(Duration::from_micros(500));
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Genuinely non-blocking, unlike the blocking receiver's timed-wait
    /// fallback — this is what makes the reactor's polling sweeps cheap.
    fn try_recv(&mut self) -> Result<Option<Message>, NetError> {
        self.poll_msg()
    }
}

/// Bind a listener on `addr` (use port 0 for an ephemeral port).
pub fn listen(addr: SocketAddr) -> Result<TcpListener, NetError> {
    TcpListener::bind(addr).map_err(NetError::Io)
}

/// Accept one inbound link.
pub fn accept(listener: &TcpListener) -> Result<TcpReceiver, NetError> {
    let (stream, _) = listener.accept().map_err(NetError::Io)?;
    TcpReceiver::from_stream(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dema_core::event::{Event, NodeId, WindowId};
    use dema_metrics::NetworkCounters;

    fn loopback_pair() -> (TcpSender, TcpReceiver, SharedCounters) {
        let listener = listen("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        let counters = NetworkCounters::new_shared();
        let tx_counters = SharedCounters::clone(&counters);
        let tx_handle = std::thread::spawn(move || TcpSender::connect(addr, tx_counters).unwrap());
        let rx = accept(&listener).unwrap();
        (tx_handle.join().unwrap(), rx, counters)
    }

    fn msg(n: u64) -> Message {
        Message::EventBatch {
            node: NodeId(1),
            window: WindowId(2),
            sorted: true,
            events: (0..n).map(|i| Event::new(i as i64 - 5, i, i)).collect(),
        }
    }

    #[test]
    fn roundtrip_over_loopback() {
        let (mut tx, mut rx, counters) = loopback_pair();
        let m = msg(50);
        tx.send(&m).unwrap();
        assert_eq!(rx.recv().unwrap(), m);
        let s = counters.snapshot();
        assert_eq!(s.bytes, m.encoded_len() as u64 + 4);
        assert_eq!(s.events, 50);
    }

    #[test]
    fn many_messages_in_order() {
        let (mut tx, mut rx, _) = loopback_pair();
        let h = std::thread::spawn(move || {
            for i in 0..500 {
                tx.send(&Message::GammaUpdate { gamma: i }).unwrap();
            }
        });
        for i in 0..500 {
            assert_eq!(rx.recv().unwrap(), Message::GammaUpdate { gamma: i });
        }
        h.join().unwrap();
    }

    #[test]
    fn recv_timeout_returns_none() {
        let (_tx, mut rx, _) = loopback_pair();
        let got = rx.recv_timeout(Duration::from_millis(30)).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn peer_close_is_disconnect() {
        let (tx, mut rx, _) = loopback_pair();
        drop(tx);
        assert!(matches!(rx.recv(), Err(NetError::Disconnected)));
    }

    #[test]
    fn connect_timeout_connects_and_surfaces_refusal() {
        // Happy path: a listener is up, the bounded connect succeeds.
        let listener = listen("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        let counters = NetworkCounters::new_shared();
        let mut tx = TcpSender::connect_timeout(
            addr,
            SharedCounters::clone(&counters),
            Duration::from_secs(5),
        )
        .unwrap();
        let mut rx = accept(&listener).unwrap();
        tx.send(&Message::GammaUpdate { gamma: 3 }).unwrap();
        assert_eq!(rx.recv().unwrap(), Message::GammaUpdate { gamma: 3 });

        // Nothing listening: the error comes back as a real NetError::Io
        // instead of a hang or a panic.
        let dead = listener.local_addr().unwrap();
        drop(listener);
        drop(rx);
        let err = TcpSender::connect_timeout(
            dead,
            NetworkCounters::new_shared(),
            Duration::from_millis(500),
        );
        assert!(matches!(err, Err(NetError::Io(_))));
    }

    #[test]
    fn timeout_state_is_cached_and_modes_alternate_correctly() {
        let (mut tx, mut rx, _) = loopback_pair();
        // Timed mode, twice with the same deadline (second call skips the
        // syscall via the cache), then blocking, then timed again.
        assert!(rx
            .recv_timeout(Duration::from_millis(10))
            .unwrap()
            .is_none());
        assert!(rx
            .recv_timeout(Duration::from_millis(10))
            .unwrap()
            .is_none());
        tx.send(&Message::GammaUpdate { gamma: 1 }).unwrap();
        assert_eq!(rx.recv().unwrap(), Message::GammaUpdate { gamma: 1 });
        assert!(rx
            .recv_timeout(Duration::from_millis(10))
            .unwrap()
            .is_none());
        tx.send(&Message::GammaUpdate { gamma: 2 }).unwrap();
        let got = rx.recv_timeout(Duration::from_millis(500)).unwrap();
        assert_eq!(got, Some(Message::GammaUpdate { gamma: 2 }));
    }

    #[test]
    fn nonblocking_roundtrip_preserves_handoff_bytes() {
        // A message sent through the blocking halves may be sitting in the
        // receiver's BufReader when both sides convert; nothing is lost.
        let (mut tx, mut rx, counters) = loopback_pair();
        let first = msg(10);
        tx.send(&first).unwrap();
        assert_eq!(rx.recv().unwrap(), first);
        let mut tx = tx.into_nonblocking().unwrap();
        let mut rx = rx.into_nonblocking().unwrap();
        assert!(rx.poll_msg().unwrap().is_none());
        let second = msg(50);
        tx.send(&second).unwrap();
        let got = loop {
            if let Some(m) = rx.poll_msg().unwrap() {
                break m;
            }
        };
        assert_eq!(got, second);
        let s = counters.snapshot();
        assert_eq!(
            s.bytes,
            first.encoded_len() as u64 + second.encoded_len() as u64 + 8,
            "accounting matches the blocking path frame-for-frame"
        );
    }

    #[test]
    fn nonblocking_sender_buffers_on_full_socket_and_drains() {
        // Fill the loopback socket until a write would block: the sender
        // must buffer the remainder instead of erroring, then finish the
        // job via flush_pending as the reader drains.
        let (tx, rx, _) = loopback_pair();
        let mut tx = tx.into_nonblocking().unwrap();
        let mut rx = rx.into_nonblocking().unwrap();
        let big = msg(20_000);
        let mut sent = 0u64;
        while tx.pending_bytes() == 0 && sent < 256 {
            tx.send(&big).unwrap();
            sent += 1;
        }
        assert!(tx.pending_bytes() > 0, "socket never filled");
        assert!(!tx.flush_pending().unwrap(), "still pending while unread");
        let mut got = 0u64;
        while got < sent {
            let _ = tx.flush_pending().unwrap();
            match rx.poll_msg().unwrap() {
                Some(m) => {
                    assert_eq!(m, big);
                    got += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        assert!(tx.flush_pending().unwrap(), "fully drained");
        assert_eq!(tx.pending_bytes(), 0);
    }

    #[test]
    fn nonblocking_peer_close_is_disconnect() {
        let (tx, rx, _) = loopback_pair();
        let mut rx = rx.into_nonblocking().unwrap();
        drop(tx);
        loop {
            match rx.poll_msg() {
                Ok(Some(_)) => panic!("nothing was sent"),
                Ok(None) => std::thread::yield_now(),
                Err(NetError::Disconnected) => break,
                Err(e) => panic!("{e}"),
            }
        }
    }

    #[test]
    fn timeout_then_delivery_still_works() {
        let (mut tx, mut rx, _) = loopback_pair();
        assert!(rx
            .recv_timeout(Duration::from_millis(10))
            .unwrap()
            .is_none());
        tx.send(&Message::GammaUpdate { gamma: 9 }).unwrap();
        let got = rx.recv_timeout(Duration::from_millis(500)).unwrap();
        assert_eq!(got, Some(Message::GammaUpdate { gamma: 9 }));
    }
}
