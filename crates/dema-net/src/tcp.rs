//! TCP transport: real sockets, length-prefixed frames, same accounting as
//! the in-memory links.
//!
//! One `TcpStream` carries one unidirectional message flow (the cluster
//! wires two streams per node pair). `TCP_NODELAY` is set — the protocol is
//! request/response-ish per window, so Nagle would serialize the
//! identification/calculation round trips.
//!
//! Each frame is assembled (prefix + payload) in a buffer recycled through
//! `dema-wire`'s [`dema_wire::BufferPool`] and reaches the stream as one
//! contiguous write: small frames coalesce in the `BufWriter` and flush as
//! a single syscall; frames larger than its buffer bypass it and are still
//! one `write` each, never one per frame segment.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use dema_wire::frame::{read_frame, write_frame, FrameError};
use dema_wire::Message;

use crate::{MsgReceiver, MsgSender, NetError, SharedCounters};

/// Sending half over TCP.
pub struct TcpSender {
    writer: BufWriter<TcpStream>,
    counters: SharedCounters,
}

/// Receiving half over TCP.
pub struct TcpReceiver {
    reader: BufReader<TcpStream>,
    /// Last read-timeout successfully applied to the socket, or `None` when
    /// the state is unknown (initially, and after a failed
    /// `set_read_timeout` round-trip — an error mid-change must not leave
    /// us believing the old mode is still in force).
    applied_timeout: Option<Option<Duration>>,
}

impl TcpSender {
    /// Connect to a listening peer.
    pub fn connect(addr: SocketAddr, counters: SharedCounters) -> Result<TcpSender, NetError> {
        let stream = TcpStream::connect(addr).map_err(NetError::Io)?;
        stream.set_nodelay(true).map_err(NetError::Io)?;
        Ok(TcpSender {
            writer: BufWriter::new(stream),
            counters,
        })
    }

    /// Connect to a listening peer, failing after `timeout` instead of
    /// hanging on an unresponsive address. The resulting I/O error (timed
    /// out, refused, unreachable…) is surfaced as [`NetError::Io`].
    pub fn connect_timeout(
        addr: SocketAddr,
        counters: SharedCounters,
        timeout: Duration,
    ) -> Result<TcpSender, NetError> {
        let stream = TcpStream::connect_timeout(&addr, timeout).map_err(NetError::Io)?;
        stream.set_nodelay(true).map_err(NetError::Io)?;
        Ok(TcpSender {
            writer: BufWriter::new(stream),
            counters,
        })
    }
}

impl MsgSender for TcpSender {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        let bytes = write_frame(&mut self.writer, msg).map_err(NetError::Io)?;
        // Flush per message: the protocol's round trips are latency-bound.
        self.writer.flush().map_err(NetError::Io)?;
        self.counters.record(bytes, msg.event_units());
        Ok(())
    }
}

impl TcpReceiver {
    /// Wrap an accepted stream.
    pub fn from_stream(stream: TcpStream) -> Result<TcpReceiver, NetError> {
        stream.set_nodelay(true).map_err(NetError::Io)?;
        Ok(TcpReceiver {
            reader: BufReader::new(stream),
            applied_timeout: None,
        })
    }

    /// Put the socket in the wanted blocking mode, skipping the syscall
    /// when it is already known to be in force. On failure the cached state
    /// is invalidated *before* returning, so an early-return error path can
    /// never leave a stale belief about the socket's mode — the next call
    /// re-applies it unconditionally.
    fn apply_timeout(&mut self, want: Option<Duration>) -> Result<(), NetError> {
        if self.applied_timeout == Some(want) {
            return Ok(());
        }
        self.applied_timeout = None;
        self.reader
            .get_ref()
            .set_read_timeout(want)
            .map_err(NetError::Io)?;
        self.applied_timeout = Some(want);
        Ok(())
    }
}

impl MsgReceiver for TcpReceiver {
    fn recv(&mut self) -> Result<Message, NetError> {
        self.apply_timeout(None)?;
        match read_frame(&mut self.reader) {
            Ok((msg, _)) => Ok(msg),
            Err(FrameError::Eof) => Err(NetError::Disconnected),
            Err(FrameError::Io(e)) => Err(NetError::Io(e)),
            Err(e) => Err(NetError::Corrupt(e.to_string())),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, NetError> {
        self.apply_timeout(Some(timeout))?;
        match read_frame(&mut self.reader) {
            Ok((msg, _)) => Ok(Some(msg)),
            Err(FrameError::Eof) => Err(NetError::Disconnected),
            Err(FrameError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(FrameError::Io(e)) => Err(NetError::Io(e)),
            Err(e) => Err(NetError::Corrupt(e.to_string())),
        }
    }
}

/// Bind a listener on `addr` (use port 0 for an ephemeral port).
pub fn listen(addr: SocketAddr) -> Result<TcpListener, NetError> {
    TcpListener::bind(addr).map_err(NetError::Io)
}

/// Accept one inbound link.
pub fn accept(listener: &TcpListener) -> Result<TcpReceiver, NetError> {
    let (stream, _) = listener.accept().map_err(NetError::Io)?;
    TcpReceiver::from_stream(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dema_core::event::{Event, NodeId, WindowId};
    use dema_metrics::NetworkCounters;

    fn loopback_pair() -> (TcpSender, TcpReceiver, SharedCounters) {
        let listener = listen("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        let counters = NetworkCounters::new_shared();
        let tx_counters = SharedCounters::clone(&counters);
        let tx_handle = std::thread::spawn(move || TcpSender::connect(addr, tx_counters).unwrap());
        let rx = accept(&listener).unwrap();
        (tx_handle.join().unwrap(), rx, counters)
    }

    fn msg(n: u64) -> Message {
        Message::EventBatch {
            node: NodeId(1),
            window: WindowId(2),
            sorted: true,
            events: (0..n).map(|i| Event::new(i as i64 - 5, i, i)).collect(),
        }
    }

    #[test]
    fn roundtrip_over_loopback() {
        let (mut tx, mut rx, counters) = loopback_pair();
        let m = msg(50);
        tx.send(&m).unwrap();
        assert_eq!(rx.recv().unwrap(), m);
        let s = counters.snapshot();
        assert_eq!(s.bytes, m.encoded_len() as u64 + 4);
        assert_eq!(s.events, 50);
    }

    #[test]
    fn many_messages_in_order() {
        let (mut tx, mut rx, _) = loopback_pair();
        let h = std::thread::spawn(move || {
            for i in 0..500 {
                tx.send(&Message::GammaUpdate { gamma: i }).unwrap();
            }
        });
        for i in 0..500 {
            assert_eq!(rx.recv().unwrap(), Message::GammaUpdate { gamma: i });
        }
        h.join().unwrap();
    }

    #[test]
    fn recv_timeout_returns_none() {
        let (_tx, mut rx, _) = loopback_pair();
        let got = rx.recv_timeout(Duration::from_millis(30)).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn peer_close_is_disconnect() {
        let (tx, mut rx, _) = loopback_pair();
        drop(tx);
        assert!(matches!(rx.recv(), Err(NetError::Disconnected)));
    }

    #[test]
    fn connect_timeout_connects_and_surfaces_refusal() {
        // Happy path: a listener is up, the bounded connect succeeds.
        let listener = listen("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        let counters = NetworkCounters::new_shared();
        let mut tx = TcpSender::connect_timeout(
            addr,
            SharedCounters::clone(&counters),
            Duration::from_secs(5),
        )
        .unwrap();
        let mut rx = accept(&listener).unwrap();
        tx.send(&Message::GammaUpdate { gamma: 3 }).unwrap();
        assert_eq!(rx.recv().unwrap(), Message::GammaUpdate { gamma: 3 });

        // Nothing listening: the error comes back as a real NetError::Io
        // instead of a hang or a panic.
        let dead = listener.local_addr().unwrap();
        drop(listener);
        drop(rx);
        let err = TcpSender::connect_timeout(
            dead,
            NetworkCounters::new_shared(),
            Duration::from_millis(500),
        );
        assert!(matches!(err, Err(NetError::Io(_))));
    }

    #[test]
    fn timeout_state_is_cached_and_modes_alternate_correctly() {
        let (mut tx, mut rx, _) = loopback_pair();
        // Timed mode, twice with the same deadline (second call skips the
        // syscall via the cache), then blocking, then timed again.
        assert!(rx
            .recv_timeout(Duration::from_millis(10))
            .unwrap()
            .is_none());
        assert!(rx
            .recv_timeout(Duration::from_millis(10))
            .unwrap()
            .is_none());
        tx.send(&Message::GammaUpdate { gamma: 1 }).unwrap();
        assert_eq!(rx.recv().unwrap(), Message::GammaUpdate { gamma: 1 });
        assert!(rx
            .recv_timeout(Duration::from_millis(10))
            .unwrap()
            .is_none());
        tx.send(&Message::GammaUpdate { gamma: 2 }).unwrap();
        let got = rx.recv_timeout(Duration::from_millis(500)).unwrap();
        assert_eq!(got, Some(Message::GammaUpdate { gamma: 2 }));
    }

    #[test]
    fn timeout_then_delivery_still_works() {
        let (mut tx, mut rx, _) = loopback_pair();
        assert!(rx
            .recv_timeout(Duration::from_millis(10))
            .unwrap()
            .is_none());
        tx.send(&Message::GammaUpdate { gamma: 9 }).unwrap();
        let got = rx.recv_timeout(Duration::from_millis(500)).unwrap();
        assert_eq!(got, Some(Message::GammaUpdate { gamma: 9 }));
    }
}
