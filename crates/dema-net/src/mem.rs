//! In-memory links with exact wire accounting.
//!
//! Messages move through an unbounded crossbeam channel without being
//! serialized, but every send records the bytes the message *would* occupy
//! on the wire (`encoded_len() + 4` frame prefix) plus its event units, so
//! the network-cost figures are identical to a TCP run.
//!
//! Because nothing is encoded, this transport needs no frame buffers at
//! all: `send` clones the message into the channel, and for the hot
//! candidate-reply path that clone is a refcount bump on the reply's
//! `SharedRun` payloads — the events themselves are never copied between
//! the local store and the root's merger.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use dema_core::sync::{rank, Mutex};
use dema_wire::Message;

use crate::{MsgReceiver, MsgSender, NetError, SharedCounters};

/// A simulated link-capacity limiter.
///
/// Models a serial link of fixed bandwidth: each frame occupies the link for
/// `bytes / bytes_per_sec`, and the sender blocks until its frame has
/// "finished transmitting". This reproduces the bandwidth-constrained edge
/// uplinks (Wi-Fi, LTE) the paper's motivation targets, without real
/// sockets.
#[derive(Debug)]
pub struct Throttle {
    bytes_per_sec: f64,
    available_at: Mutex<Instant>,
}

impl Throttle {
    /// A throttle for a link of `mbits_per_sec` megabits per second.
    pub fn new_shared(mbits_per_sec: u64) -> Arc<Throttle> {
        assert!(mbits_per_sec > 0, "bandwidth must be positive");
        Arc::new(Throttle {
            bytes_per_sec: mbits_per_sec as f64 * 1_000_000.0 / 8.0,
            available_at: Mutex::new(rank::NET_THROTTLE, Instant::now()),
        })
    }

    /// Block until a frame of `bytes` has cleared the link. Every frame
    /// costs at least its 4-byte length prefix, so zero-payload control
    /// frames are paced like any other traffic instead of passing free.
    fn transmit(&self, bytes: u64) {
        let bytes = bytes.max(4);
        let cost = Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec);
        let deadline = {
            let mut at = self.available_at.lock();
            let now = Instant::now();
            let start = (*at).max(now);
            *at = start + cost;
            *at
        };
        let now = Instant::now();
        if deadline > now {
            std::thread::sleep(deadline - now);
        }
    }
}

/// Sending half of an in-memory link.
pub struct MemSender {
    tx: Sender<Message>,
    counters: SharedCounters,
    throttle: Option<Arc<Throttle>>,
}

/// Receiving half of an in-memory link.
pub struct MemReceiver {
    rx: Receiver<Message>,
}

/// Create a unidirectional in-memory link whose traffic is recorded in
/// `counters`.
pub fn link(counters: SharedCounters) -> (MemSender, MemReceiver) {
    // lint: allow(R12): in-flight traffic is bounded by the windows the protocol keeps open
    let (tx, rx) = unbounded();
    (
        MemSender {
            tx,
            counters,
            throttle: None,
        },
        MemReceiver { rx },
    )
}

/// Create a bandwidth-limited in-memory link: sends block as if the frame
/// crossed a serial link of the throttle's capacity.
pub fn throttled_link(
    counters: SharedCounters,
    throttle: Arc<Throttle>,
) -> (MemSender, MemReceiver) {
    // lint: allow(R12): the throttle paces senders, so queue depth tracks link capacity
    let (tx, rx) = unbounded();
    (
        MemSender {
            tx,
            counters,
            throttle: Some(throttle),
        },
        MemReceiver { rx },
    )
}

impl MsgSender for MemSender {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        let bytes = msg.encoded_len() as u64 + 4;
        if let Some(t) = &self.throttle {
            t.transmit(bytes);
        }
        self.counters.record(bytes, msg.event_units());
        self.tx
            .send(msg.clone())
            .map_err(|_| NetError::Disconnected)
    }
}

impl MemSender {
    /// Cheap clone for fan-in topologies (many local nodes → one root).
    /// Traffic from all clones lands in the same counters.
    pub fn clone_sender(&self) -> MemSender {
        MemSender {
            tx: self.tx.clone(),
            counters: SharedCounters::clone(&self.counters),
            throttle: self.throttle.clone(),
        }
    }
}

impl MsgReceiver for MemReceiver {
    fn recv(&mut self) -> Result<Message, NetError> {
        self.rx.recv().map_err(|_| NetError::Disconnected)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, NetError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(Some(m)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    fn try_recv(&mut self) -> Result<Option<Message>, NetError> {
        match self.rx.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dema_core::event::{Event, NodeId, WindowId};
    use dema_metrics::NetworkCounters;

    fn msg(n: u64) -> Message {
        Message::EventBatch {
            node: NodeId(0),
            window: WindowId(0),
            sorted: false,
            events: (0..n).map(|i| Event::new(i as i64, i, i)).collect(),
        }
    }

    #[test]
    fn messages_arrive_in_order() {
        let (mut tx, mut rx) = link(NetworkCounters::new_shared());
        for i in 0..10 {
            tx.send(&Message::GammaUpdate { gamma: i }).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), Message::GammaUpdate { gamma: i });
        }
    }

    #[test]
    fn accounting_matches_encoded_size() {
        let counters = NetworkCounters::new_shared();
        let (mut tx, _rx) = link(SharedCounters::clone(&counters));
        let m = msg(100);
        tx.send(&m).unwrap();
        let s = counters.snapshot();
        assert_eq!(s.bytes, m.encoded_len() as u64 + 4);
        assert_eq!(s.messages, 1);
        assert_eq!(s.events, 100);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, mut rx) = link(NetworkCounters::new_shared());
        let got = rx.recv_timeout(Duration::from_millis(10)).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn dropped_sender_disconnects_receiver() {
        let (tx, mut rx) = link(NetworkCounters::new_shared());
        drop(tx);
        assert!(matches!(rx.recv(), Err(NetError::Disconnected)));
    }

    #[test]
    fn dropped_receiver_fails_sends() {
        let (mut tx, rx) = link(NetworkCounters::new_shared());
        drop(rx);
        assert!(matches!(
            tx.send(&Message::GammaUpdate { gamma: 1 }),
            Err(NetError::Disconnected)
        ));
    }

    #[test]
    fn cloned_senders_share_counters_and_channel() {
        let counters = NetworkCounters::new_shared();
        let (mut tx, mut rx) = link(SharedCounters::clone(&counters));
        let mut tx2 = tx.clone_sender();
        tx.send(&Message::GammaUpdate { gamma: 1 }).unwrap();
        tx2.send(&Message::GammaUpdate { gamma: 2 }).unwrap();
        assert_eq!(counters.snapshot().messages, 2);
        assert!(rx.recv().is_ok());
        assert!(rx.recv().is_ok());
    }

    #[test]
    fn works_across_threads() {
        let (mut tx, mut rx) = link(NetworkCounters::new_shared());
        let h = std::thread::spawn(move || {
            for i in 0..1000 {
                tx.send(&Message::GammaUpdate { gamma: i }).unwrap();
            }
        });
        for i in 0..1000 {
            assert_eq!(rx.recv().unwrap(), Message::GammaUpdate { gamma: i });
        }
        h.join().unwrap();
    }

    #[test]
    fn throttled_link_paces_sends() {
        // 8 Mbit/s = 1 MB/s; 3 frames of ~24 KB ≈ 72 KB ≈ 70 ms.
        let throttle = Throttle::new_shared(8);
        let (mut tx, mut rx) = throttled_link(NetworkCounters::new_shared(), throttle);
        let start = std::time::Instant::now();
        for _ in 0..3 {
            tx.send(&msg(1000)).unwrap();
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(50),
            "sent too fast: {elapsed:?}"
        );
        for _ in 0..3 {
            assert!(rx.recv().is_ok());
        }
    }

    #[test]
    fn zero_byte_frames_still_pace() {
        // 1000 "free" frames at 1 Mbit/s (125 000 B/s): clamped to the
        // 4-byte header each, they occupy the link for 32 ms of budget
        // instead of zero.
        let throttle = Throttle::new_shared(1);
        let t = Arc::clone(&throttle);
        let start = Instant::now();
        for _ in 0..1000 {
            t.transmit(0);
        }
        // 1000 × 4 B at 125 000 B/s = 32 ms minimum.
        assert!(
            start.elapsed() >= Duration::from_millis(25),
            "zero-byte frames paced as free: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn throttle_serializes_concurrent_senders() {
        let throttle = Throttle::new_shared(8); // 1 MB/s shared
        let counters = NetworkCounters::new_shared();
        let (tx, _rx) = throttled_link(SharedCounters::clone(&counters), throttle);
        let start = std::time::Instant::now();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let mut tx = tx.clone_sender();
                std::thread::spawn(move || tx.send(&msg(1000)).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // 4 × 24 KB ≈ 96 KB at 1 MB/s ≈ 96 ms serialized.
        assert!(start.elapsed() >= Duration::from_millis(60));
    }
}
