#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # dema-net
//!
//! Transports for the Dema cluster protocol. Two interchangeable
//! implementations behind the [`MsgSender`] / [`MsgReceiver`] traits:
//!
//! * [`mem`] — in-process links built on crossbeam channels. Every send is
//!   accounted with the message's exact encoded size (plus the 4-byte frame
//!   prefix, for parity with TCP), so network-cost experiments measure real
//!   wire bytes even when nothing crosses a socket. This is the default
//!   substrate for the paper's cluster topology (see DESIGN.md §5 on the
//!   hardware substitution).
//! * [`tcp`] — real TCP over `std::net` with length-prefixed frames, for
//!   multi-process runs. Byte accounting matches `mem` exactly.
//!
//! Links are unidirectional; a topology wires two per node pair.
//!
//! The [`fault`] module wraps either transport's sender in a seeded
//! chaos layer (drops, delay, duplication, reordering, scripted
//! disconnects) for deterministic fault testing.

pub mod fault;
pub mod mem;
pub mod reactor;
pub mod step;
pub mod tcp;

pub use mem::link;

use dema_metrics::NetworkCounters;
use dema_wire::Message;
use std::sync::Arc;
use std::time::Duration;

/// Errors surfaced by transports.
#[derive(Debug)]
pub enum NetError {
    /// The peer is gone (channel closed / connection reset).
    Disconnected,
    /// Underlying I/O failed.
    Io(std::io::Error),
    /// A frame failed to decode.
    Corrupt(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Corrupt(msg) => write!(f, "corrupt frame: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Sending half of a link.
pub trait MsgSender: Send {
    /// Send one message; accounting happens here.
    fn send(&mut self, msg: &Message) -> Result<(), NetError>;

    /// Retry any bytes a nonblocking sender buffered on `WouldBlock`.
    /// `Ok(true)` means nothing is pending (always, for blocking
    /// transports — the default); `Ok(false)` means the peer's socket is
    /// still full and the caller should retry when it becomes writable
    /// (the reactor's `Writable` event).
    fn flush_pending(&mut self) -> Result<bool, NetError> {
        Ok(true)
    }
}

/// Receiving half of a link.
pub trait MsgReceiver: Send {
    /// Block until a message arrives (or the peer disconnects).
    fn recv(&mut self) -> Result<Message, NetError>;

    /// Wait up to `timeout`; `Ok(None)` on timeout.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, NetError>;

    /// Non-blocking poll; `Ok(None)` when no message is ready. The default
    /// falls back to a short timed wait for transports without a cheap
    /// non-blocking path (TCP).
    fn try_recv(&mut self) -> Result<Option<Message>, NetError> {
        self.recv_timeout(Duration::from_micros(500))
    }
}

/// Per-link byte/message/event accounting shared with the harness.
pub type SharedCounters = Arc<NetworkCounters>;
