//! Poll-based reactor: one event loop hosting many protocol state
//! machines (DESIGN.md §13).
//!
//! The vendored dependency set has no `epoll`/`kqueue` shim, so readiness
//! is *level-triggered polling*: every registered [`Source`] (an
//! in-process channel, a scheduler-visible step queue, or a nonblocking
//! TCP parser) exposes a cheap non-blocking poll, and the loop sweeps
//! them round-robin, draining each before moving on. Between sweeps the
//! loop backs off exactly like the threaded runner's drive loop did
//! (yield briefly, then sleep a few µs, bounded by the next timer
//! deadline), so idle reactors cost near-nothing while busy ones run
//! syscall-free on in-memory links.
//!
//! Deadlines are a binary-heap timer wheel: handlers arm one-shot timers
//! ([`Ops::arm_timer`]) and receive [`ReactorEvent::Timer`] when they
//! come due. Timers are never cancelled — a stale fire is delivered and
//! the handler re-checks its own state, which keeps the heap free of
//! tombstone bookkeeping (the retry `Supervisor` re-derives its real
//! deadlines on every tick anyway).
//!
//! Event delivery order within one sweep is deterministic: due timers in
//! deadline order, then each source in registration order (drained
//! fully), then writability retries, then wakes — so a single-shard
//! reactor is a sequential, reproducible schedule over its handlers.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dema_metrics::ReactorStats;
use dema_wire::Message;

use crate::step::StepQueue;
use crate::tcp::NbTcpReceiver;
use crate::{MsgReceiver, NetError};

/// What a [`Source`] poll produced.
#[derive(Debug)]
pub enum Polled {
    /// One message, ready now.
    Msg(Message),
    /// Nothing available; poll again later.
    Empty,
    /// The peer is gone; the source will never produce again.
    Closed,
}

/// A non-blocking message producer the reactor can sweep.
pub trait Source {
    /// Poll once without blocking.
    ///
    /// # Errors
    /// Transport failures other than orderly shutdown (which is
    /// [`Polled::Closed`]).
    fn poll(&mut self) -> Result<Polled, NetError>;
}

/// Adapter: any [`MsgReceiver`] whose `try_recv` is genuinely
/// non-blocking (the mem and throttled links) is a reactor source.
/// Blocking-backed receivers (TCP) should convert to [`NbTcpReceiver`]
/// instead — their `try_recv` burns a timed wait per poll.
pub struct RecvSource(pub Box<dyn MsgReceiver>);

impl Source for RecvSource {
    fn poll(&mut self) -> Result<Polled, NetError> {
        match self.0.try_recv() {
            Ok(Some(msg)) => Ok(Polled::Msg(msg)),
            Ok(None) => Ok(Polled::Empty),
            Err(NetError::Disconnected) => Ok(Polled::Closed),
            Err(e) => Err(e),
        }
    }
}

impl Source for StepQueue {
    /// A step queue never disconnects — exhaustion is just [`Polled::Empty`].
    fn poll(&mut self) -> Result<Polled, NetError> {
        Ok(self.pop().map_or(Polled::Empty, Polled::Msg))
    }
}

impl Source for NbTcpReceiver {
    fn poll(&mut self) -> Result<Polled, NetError> {
        match self.poll_msg() {
            Ok(Some(msg)) => Ok(Polled::Msg(msg)),
            Ok(None) => Ok(Polled::Empty),
            Err(NetError::Disconnected) => Ok(Polled::Closed),
            Err(e) => Err(e),
        }
    }
}

/// An event delivered to a registered handler.
#[derive(Debug)]
pub enum ReactorEvent {
    /// A message arrived on the handler's link `link`.
    Readable {
        /// Handler-local link id (chosen at registration).
        link: usize,
        /// The decoded message.
        msg: Message,
    },
    /// Link `link` closed; no further `Readable` events will follow.
    Closed {
        /// Handler-local link id.
        link: usize,
    },
    /// A sender the handler flagged via [`Ops::watch_writable`] may have
    /// socket space again — retry its pending bytes.
    Writable {
        /// Handler-local link id.
        link: usize,
    },
    /// A timer armed via [`Ops::arm_timer`] came due.
    Timer {
        /// The token the handler armed the timer with.
        token: u64,
    },
    /// Self-scheduled continuation (requested via [`Ops::wake`]), also
    /// delivered once to every handler when the loop starts.
    Wake,
}

/// Effects a handler requests while processing an event; applied by the
/// reactor after the handler returns.
#[derive(Default)]
pub struct Ops {
    timers: Vec<(Instant, u64)>,
    writable: Vec<usize>,
    wake: bool,
}

impl Ops {
    /// Arm a one-shot timer for the calling handler: a
    /// [`ReactorEvent::Timer`] with `token` fires at (or shortly after)
    /// `at`.
    pub fn arm_timer(&mut self, at: Instant, token: u64) {
        self.timers.push((at, token));
    }

    /// Ask for a [`ReactorEvent::Writable`] for `link` on the next sweep
    /// (a sender reported pending bytes after `WouldBlock`).
    pub fn watch_writable(&mut self, link: usize) {
        self.writable.push(link);
    }

    /// Ask for a [`ReactorEvent::Wake`] on the next sweep — the handler
    /// has more self-driven work (e.g. the next window to close) but
    /// yields the loop for fairness.
    pub fn wake(&mut self) {
        self.wake = true;
    }

    fn clear(&mut self) {
        self.timers.clear();
        self.writable.clear();
        self.wake = false;
    }
}

/// A protocol state machine hosted on the reactor.
pub trait Handler<E> {
    /// React to one event, optionally requesting follow-ups via `ops`.
    ///
    /// # Errors
    /// A fatal error aborts the whole reactor loop; handlers that should
    /// outlive a peer failure must absorb it and report `done` instead.
    fn on_event(&mut self, ev: ReactorEvent, ops: &mut Ops) -> Result<(), E>;

    /// An I/O error on one of the handler's sources (corruption or a
    /// transport fault other than orderly close).
    ///
    /// # Errors
    /// Same contract as [`Handler::on_event`].
    fn on_io_error(&mut self, link: usize, err: NetError) -> Result<(), E>;

    /// `true` once the handler needs no further events. The loop exits
    /// when every handler is done.
    fn done(&self) -> bool;
}

struct SourceEntry {
    handler: usize,
    link: usize,
    src: Box<dyn Source>,
    open: bool,
}

/// The event loop: registered sources, a timer heap, and per-sweep
/// bookkeeping. One reactor runs one thread (a *shard*); a cluster run
/// hosts one reactor per configured shard plus one for the root.
pub struct Reactor {
    sources: Vec<SourceEntry>,
    /// Min-heap on (deadline, sequence); the sequence makes equal
    /// deadlines FIFO and the ordering total.
    timers: BinaryHeap<Reverse<(Instant, u64, usize, u64)>>,
    timer_seq: u64,
    stats: Arc<ReactorStats>,
    /// Sweeps with zero events before the loop starts sleeping.
    spin_sweeps: u32,
}

/// Spin this many empty sweeps (yielding) before sleeping, mirroring the
/// threaded runner's drive-loop backoff.
const SPIN_SWEEPS: u32 = 64;

/// Idle nap once spinning gives up; short enough that a burst wakes the
/// loop with negligible latency, long enough to not busy a core.
const IDLE_NAP: Duration = Duration::from_micros(20);

impl Reactor {
    /// An empty reactor recording loop behavior into `stats`.
    pub fn new(stats: Arc<ReactorStats>) -> Reactor {
        Reactor {
            sources: Vec::new(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            stats,
            spin_sweeps: SPIN_SWEEPS,
        }
    }

    /// Register `src` as handler `handler`'s link `link`. Sources are
    /// swept in registration order.
    pub fn register(&mut self, handler: usize, link: usize, src: Box<dyn Source>) {
        self.sources.push(SourceEntry {
            handler,
            link,
            src,
            open: true,
        });
    }

    fn push_timer(&mut self, handler: usize, at: Instant, token: u64) {
        self.timer_seq += 1;
        self.timers
            .push(Reverse((at, self.timer_seq, handler, token)));
    }

    /// Apply the effects a handler requested.
    fn absorb_ops(
        &mut self,
        handler: usize,
        ops: &mut Ops,
        wakes: &mut Vec<usize>,
        writables: &mut Vec<(usize, usize)>,
    ) {
        for (at, token) in ops.timers.drain(..) {
            self.push_timer(handler, at, token);
        }
        if ops.wake {
            wakes.push(handler);
        }
        for link in ops.writable.drain(..) {
            writables.push((handler, link));
        }
        ops.clear();
    }

    /// Drive every handler to completion.
    ///
    /// Each sweep delivers, in order: due timers (deadline order), then
    /// every open source's pending messages (registration order, each
    /// source drained fully — the protocol is bursty, so draining
    /// amortizes sweeps), then writability retries, then wakes requested
    /// by the previous sweep. The loop exits when all handlers report
    /// done.
    ///
    /// # Errors
    /// The first handler error aborts the loop and is returned.
    pub fn run<E>(&mut self, handlers: &mut [&mut dyn Handler<E>]) -> Result<(), E> {
        let mut ops = Ops::default();
        let mut wakes: Vec<usize> = (0..handlers.len()).collect();
        let mut writables: Vec<(usize, usize)> = Vec::new();
        let mut due_timers: Vec<(Instant, usize, u64)> = Vec::new();
        // Next-sweep carry buffers, hoisted out of the sweep loop: the
        // end-of-sweep swap hands each sweep the (drained, capacity-warm)
        // vectors of the previous one, so the steady-state dispatch loop
        // performs no allocator round-trips.
        let mut next_wakes: Vec<usize> = Vec::new();
        let mut next_writables: Vec<(usize, usize)> = Vec::new();
        let mut idle_sweeps = 0u32;
        // hot-path: reactor-dispatch
        loop {
            let mut events = 0u64;
            let mut timer_events = 0u64;

            // Due timers, in deadline order. The due set is snapshotted
            // before dispatch: a handler that arms an already-due timer
            // from inside its callback (e.g. a deadline derived from a
            // quiescence instant in the past) fires next sweep, after the
            // sources — otherwise the drain loop re-admits it and the
            // sweep never reaches the source polls (timer starvation).
            let now = Instant::now();
            while let Some(&Reverse((due, ..))) = self.timers.peek() {
                if due > now {
                    break;
                }
                let Some(Reverse((due, _, handler, token))) = self.timers.pop() else {
                    break;
                };
                due_timers.push((due, handler, token));
            }
            for (due, handler, token) in due_timers.drain(..) {
                self.stats
                    .record_timer_lag(now.saturating_duration_since(due).as_micros() as u64);
                events += 1;
                timer_events += 1;
                if handlers[handler].done() {
                    continue;
                }
                handlers[handler].on_event(ReactorEvent::Timer { token }, &mut ops)?;
                self.absorb_ops(handler, &mut ops, &mut next_wakes, &mut next_writables);
            }

            // Sources, in registration order, each drained fully.
            for i in 0..self.sources.len() {
                while self.sources[i].open {
                    let (handler, link) = (self.sources[i].handler, self.sources[i].link);
                    match self.sources[i].src.poll() {
                        Ok(Polled::Msg(msg)) => {
                            events += 1;
                            handlers[handler]
                                .on_event(ReactorEvent::Readable { link, msg }, &mut ops)?;
                        }
                        Ok(Polled::Empty) => break,
                        Ok(Polled::Closed) => {
                            self.sources[i].open = false;
                            events += 1;
                            handlers[handler].on_event(ReactorEvent::Closed { link }, &mut ops)?;
                        }
                        Err(e) => {
                            self.sources[i].open = false;
                            events += 1;
                            handlers[handler].on_io_error(link, e)?;
                        }
                    }
                    self.absorb_ops(handler, &mut ops, &mut next_wakes, &mut next_writables);
                }
            }

            // Writability retries and wakes carried over from last sweep.
            for (handler, link) in writables.drain(..) {
                if handlers[handler].done() {
                    continue;
                }
                events += 1;
                handlers[handler].on_event(ReactorEvent::Writable { link }, &mut ops)?;
                self.absorb_ops(handler, &mut ops, &mut next_wakes, &mut next_writables);
            }
            for handler in wakes.drain(..) {
                if handlers[handler].done() {
                    continue;
                }
                events += 1;
                handlers[handler].on_event(ReactorEvent::Wake, &mut ops)?;
                self.absorb_ops(handler, &mut ops, &mut next_wakes, &mut next_writables);
            }
            std::mem::swap(&mut wakes, &mut next_wakes);
            std::mem::swap(&mut writables, &mut next_writables);

            self.stats.record_tick(events, timer_events);
            if handlers.iter().all(|h| h.done()) {
                return Ok(());
            }

            if events > 0 || !wakes.is_empty() || !writables.is_empty() {
                idle_sweeps = 0;
                continue;
            }
            // Idle: spin briefly for latency, then nap — never past the
            // next timer deadline.
            idle_sweeps += 1;
            if idle_sweeps <= self.spin_sweeps {
                std::thread::yield_now();
            } else {
                let nap = self.timers.peek().map_or(IDLE_NAP, |&Reverse((due, ..))| {
                    due.saturating_duration_since(Instant::now()).min(IDLE_NAP)
                });
                if !nap.is_zero() {
                    std::thread::sleep(nap);
                }
            }
        }
    }
}

/// Spawn a named OS thread hosting one reactor shard. Thread creation for
/// the cluster's node hosting lives here — the reactor runtime, like the
/// sort pool (`dema_core::par`), is a sanctioned thread owner; ad-hoc
/// spawns in the cluster crates stay forbidden (lint R9).
///
/// # Errors
/// Propagates the OS thread-creation failure.
pub fn spawn_shard<T, F>(name: String, f: F) -> std::io::Result<std::thread::JoinHandle<T>>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    std::thread::Builder::new().name(name).spawn(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::link;
    use crate::MsgSender;
    use dema_metrics::NetworkCounters;

    /// Collects everything it sees; done after `quota` events.
    struct Probe {
        seen: Vec<String>,
        quota: usize,
    }

    impl Handler<NetError> for Probe {
        fn on_event(&mut self, ev: ReactorEvent, ops: &mut Ops) -> Result<(), NetError> {
            match ev {
                ReactorEvent::Readable { link, msg } => {
                    self.seen.push(format!("r{link}:{}", msg.variant_name()));
                }
                ReactorEvent::Closed { link } => self.seen.push(format!("c{link}")),
                ReactorEvent::Writable { link } => self.seen.push(format!("w{link}")),
                ReactorEvent::Timer { token } => self.seen.push(format!("t{token}")),
                ReactorEvent::Wake => {
                    self.seen.push("wake".to_string());
                    if self.seen.len() < 2 {
                        ops.wake();
                    }
                }
            }
            Ok(())
        }

        fn on_io_error(&mut self, link: usize, err: NetError) -> Result<(), NetError> {
            self.seen.push(format!("e{link}:{err}"));
            Ok(())
        }

        fn done(&self) -> bool {
            self.seen.len() >= self.quota
        }
    }

    #[test]
    fn delivers_messages_then_close() {
        let (mut tx, rx) = link(NetworkCounters::new_shared());
        tx.send(&Message::GammaUpdate { gamma: 1 }).unwrap();
        tx.send(&Message::GammaUpdate { gamma: 2 }).unwrap();
        drop(tx);
        let mut reactor = Reactor::new(ReactorStats::new_shared());
        reactor.register(0, 7, Box::new(RecvSource(Box::new(rx))));
        let mut probe = Probe {
            seen: Vec::new(),
            quota: 4,
        };
        reactor.run::<NetError>(&mut [&mut probe]).unwrap();
        // Both messages (the source is drained in one sweep), the close,
        // then the loop-start wake (wakes land after sources in a sweep).
        assert_eq!(
            probe.seen,
            vec!["r7:GammaUpdate", "r7:GammaUpdate", "c7", "wake"]
        );
    }

    #[test]
    fn timers_fire_in_deadline_order_with_lag_recorded() {
        let stats = ReactorStats::new_shared();
        let mut reactor = Reactor::new(Arc::clone(&stats));
        let mut probe = Probe {
            seen: Vec::new(),
            quota: 4,
        };
        let now = Instant::now();
        reactor.push_timer(0, now + Duration::from_millis(12), 2);
        reactor.push_timer(0, now + Duration::from_millis(4), 1);
        reactor.push_timer(0, now, 0);
        reactor.run::<NetError>(&mut [&mut probe]).unwrap();
        assert_eq!(probe.seen, vec!["t0", "wake", "t1", "t2"]);
        let snap = stats.snapshot();
        assert_eq!(snap.timers, 3);
        assert!(snap.ticks > 0);
    }

    #[test]
    fn wake_reschedules_once_per_sweep() {
        let mut reactor = Reactor::new(ReactorStats::new_shared());
        let mut probe = Probe {
            seen: Vec::new(),
            quota: 2,
        };
        reactor.run::<NetError>(&mut [&mut probe]).unwrap();
        assert_eq!(probe.seen, vec!["wake", "wake"]);
    }

    #[test]
    fn step_queue_is_a_source_without_disconnect() {
        let (tx, q) = crate::step::step_link(NetworkCounters::new_shared());
        let mut tx = tx;
        tx.send(&Message::GammaUpdate { gamma: 9 }).unwrap();
        let mut q = q;
        assert!(matches!(q.poll(), Ok(Polled::Msg(_))));
        assert!(matches!(q.poll(), Ok(Polled::Empty)));
        drop(tx);
        // Still just Empty: step links have no disconnect signal.
        assert!(matches!(q.poll(), Ok(Polled::Empty)));
    }
}
